//! `specrt-check` — the conformance-harness CLI.
//!
//! ```text
//! specrt-check fuzz --cases 500 --seed 0x5eed [--jobs N] [--inject drop-ronly]
//! specrt-check replay <seed>
//! specrt-check interleave [--jobs N] [--lines L --elems E --procs P]
//! specrt-check model [--lines L] [--elems E] [--procs P] [--max-ops N]
//!                    [--variant nonpriv|priv|priv3] [--jobs N] [--inject BUG]
//! specrt-check coverage [--cases N] [--seed S] [--jobs N]
//! specrt-check campaign [--cases N] [--fault-seeds N] [--rates ppm,ppm,..]
//!                       [--nodes n,n,..] [--node-at c,c,..|never] [--ckpt-every N]
//!                       [--jobs N] [--out FILE] [--inject ckpt-skip-dirty]
//! ```
//!
//! * `fuzz` runs the differential fuzzer; exits non-zero on any oracle
//!   disagreement. With `--inject <bug>` a known protocol bug is switched
//!   on and the exit code inverts: the fuzzer must *find* (and shrink) a
//!   counterexample, proving the harness catches real regressions.
//! * `replay` re-runs one case seed and, if it disagrees, shrinks it.
//! * `interleave` runs the small-scope message-ordering enumeration at its
//!   legacy hardcoded scope; any `--lines/--elems/--procs/--max-ops/
//!   --variant` flag switches it to the bounded model checker (shared flag
//!   set with `model`). Unsupported scope combinations are rejected with
//!   the valid ranges.
//! * `model` runs the bounded model checker over the pure `ProtocolSpec`
//!   transition function: per-variant exhaustive small-scope exploration
//!   (default 2 lines × 3 elems × 4 procs, all of nonpriv/priv/priv3) with
//!   hashed-state dedup, reporting states explored, dedup hit rate and
//!   race-case coverage; exits non-zero on any violation or missing race
//!   case. With `--inject <bug>` the exit code inverts: the checker must
//!   find the planted protocol bug and print a minimal counterexample.
//! * `coverage` runs the fuzzer, the legacy enumeration and a per-variant
//!   model-checker pass, and fails unless every race case (a)–(h) of the
//!   paper's Figs. 6–9 was reached by each.
//! * `campaign` sweeps the interconnect fault plane (drop / duplicate /
//!   delay × rate × fault seed) over generated loops, asserts every run
//!   still reproduces the serial oracle's memory image, and emits a
//!   deterministic degradation report (JSON) — to stdout, or to `--out
//!   FILE` (the `BENCH_faults.json` artifact). `--nodes`/`--node-at`/
//!   `--ckpt-every` add the node-level grid (crash / pause / partition ×
//!   node × activation cycle) run under checkpoint-restart recovery;
//!   `--node-at` accepts the token `never` for the armed-but-inert gate
//!   cell. With `--inject ckpt-skip-dirty` the exit code inverts: the
//!   planted checkpoint bug (snapshots skip the dirty image state) must be
//!   caught by the serial-oracle image check.
//!
//! `--jobs N` distributes independent cases (fuzz) or script-prefix
//! partitions (interleave) over `N` worker threads; `--jobs 0` means "all
//! available cores". Output is byte-identical for every job count — the
//! default stays 1 so existing invocations and golden comparisons are
//! unchanged unless parallelism is asked for.
//!
//! `--profile[=FILE]` turns on the host-side span profiler for the run and
//! prints the ranked self-time table (plus worker-pool telemetry) to
//! **stderr** after the command finishes; with `=FILE` it also writes a
//! Chrome `trace_events` timeline of the host spans — one track per worker
//! — loadable in Perfetto. stdout is untouched: profiled runs stay
//! byte-identical to unprofiled ones, which a determinism test and a CI
//! `cmp` both enforce.

use std::process::ExitCode;

use specrt_check::{
    enumerate_small_scope_jobs, fuzz_jobs, render_case, replay, run_campaign, run_model,
    CampaignConfig, CaseSpec, Coverage, FuzzFailure, ModelConfig, NodeGridConfig, DEFAULT_MAX_OPS,
    NODE_FAULT_NEVER,
};
use specrt_machine::{CheckpointConfig, RecoveryPolicy};
use specrt_proto::FaultConfig;
use specrt_spec::{fault, SpecScope, SpecVariant};

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

struct Args {
    cases: u64,
    /// Whether `--cases` was given explicitly (the fuzz and campaign
    /// subcommands have different defaults).
    cases_set: bool,
    seed: u64,
    jobs: usize,
    inject: Option<fault::FaultKind>,
    fault_seeds: Option<u64>,
    rates_ppm: Option<Vec<u32>>,
    nodes: Option<Vec<u32>>,
    node_at: Option<Vec<u64>>,
    ckpt_every: Option<u64>,
    out: Option<String>,
    profile: bool,
    profile_out: Option<String>,
    lines: Option<u16>,
    elems: Option<u16>,
    procs: Option<u16>,
    max_ops: Option<usize>,
    variant: Option<String>,
    positional: Vec<String>,
}

impl Args {
    /// Whether any model-scope flag was given (switches `interleave` from
    /// its legacy hardcoded scope to the model checker).
    fn scope_given(&self) -> bool {
        self.lines.is_some() || self.elems.is_some() || self.procs.is_some()
    }

    /// The requested scope, validated; defaults to the full 2x3x4 target.
    fn scope(&self) -> Result<SpecScope, String> {
        SpecScope {
            lines: self.lines.unwrap_or(2),
            elems: self.elems.unwrap_or(3),
            procs: self.procs.unwrap_or(4),
        }
        .validate()
    }

    /// The requested variants (default: all three).
    fn variants(&self) -> Result<Vec<SpecVariant>, String> {
        match &self.variant {
            None => Ok(SpecVariant::ALL.to_vec()),
            Some(v) => SpecVariant::parse(v).map(|v| vec![v]).ok_or(format!(
                "unknown variant: {v} (valid: nonpriv, priv, priv3)"
            )),
        }
    }
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _bin = argv.next();
    let cmd = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        cases: 500,
        cases_set: false,
        seed: 0x5eed,
        jobs: 1,
        inject: None,
        fault_seeds: None,
        rates_ppm: None,
        nodes: None,
        node_at: None,
        ckpt_every: None,
        out: None,
        profile: false,
        profile_out: None,
        lines: None,
        elems: None,
        procs: None,
        max_ops: None,
        variant: None,
        positional: Vec::new(),
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--cases" => {
                let v = argv.next().ok_or("--cases needs a value")?;
                args.cases = parse_u64(&v).ok_or(format!("bad --cases value: {v}"))?;
                args.cases_set = true;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                args.seed = parse_u64(&v).ok_or(format!("bad --seed value: {v}"))?;
            }
            "--jobs" | "-j" => {
                let v = argv.next().ok_or("--jobs needs a value")?;
                args.jobs = specrt_par::parse_jobs(&v).ok_or(format!("bad --jobs value: {v}"))?;
            }
            "--inject" => {
                let v = argv.next().ok_or("--inject needs a value")?;
                args.inject = Some(fault::FaultKind::parse(&v).ok_or(format!(
                    "unknown fault: {v} (valid: {})",
                    fault::FaultKind::known_names()
                ))?);
            }
            "--fault-seeds" => {
                let v = argv.next().ok_or("--fault-seeds needs a value")?;
                args.fault_seeds =
                    Some(parse_u64(&v).ok_or(format!("bad --fault-seeds value: {v}"))?);
            }
            "--rates" => {
                let v = argv.next().ok_or("--rates needs a value")?;
                let rates: Option<Vec<u32>> = v
                    .split(',')
                    .map(|r| parse_u64(r.trim()).and_then(|n| u32::try_from(n).ok()))
                    .collect();
                args.rates_ppm = Some(rates.ok_or(format!("bad --rates value: {v}"))?);
            }
            "--nodes" => {
                let v = argv.next().ok_or("--nodes needs a value")?;
                let nodes: Option<Vec<u32>> = v
                    .split(',')
                    .map(|n| parse_u64(n.trim()).and_then(|n| u32::try_from(n).ok()))
                    .collect();
                args.nodes = Some(nodes.ok_or(format!("bad --nodes value: {v}"))?);
            }
            "--node-at" => {
                let v = argv.next().ok_or("--node-at needs a value")?;
                let ats: Option<Vec<u64>> = v
                    .split(',')
                    .map(|c| match c.trim() {
                        "never" => Some(NODE_FAULT_NEVER),
                        c => parse_u64(c),
                    })
                    .collect();
                args.node_at = Some(ats.ok_or(format!("bad --node-at value: {v}"))?);
            }
            "--ckpt-every" => {
                let v = argv.next().ok_or("--ckpt-every needs a value")?;
                args.ckpt_every = Some(
                    parse_u64(&v)
                        .filter(|&n| n >= 1)
                        .ok_or(format!("bad --ckpt-every value: {v} (must be >= 1)"))?,
                );
            }
            "--out" => {
                args.out = Some(argv.next().ok_or("--out needs a value")?);
            }
            "--lines" => {
                let v = argv.next().ok_or("--lines needs a value")?;
                args.lines = Some(
                    parse_u64(&v)
                        .and_then(|n| u16::try_from(n).ok())
                        .ok_or(format!("bad --lines value: {v}"))?,
                );
            }
            "--elems" => {
                let v = argv.next().ok_or("--elems needs a value")?;
                args.elems = Some(
                    parse_u64(&v)
                        .and_then(|n| u16::try_from(n).ok())
                        .ok_or(format!("bad --elems value: {v}"))?,
                );
            }
            "--procs" => {
                let v = argv.next().ok_or("--procs needs a value")?;
                args.procs = Some(
                    parse_u64(&v)
                        .and_then(|n| u16::try_from(n).ok())
                        .ok_or(format!("bad --procs value: {v}"))?,
                );
            }
            "--max-ops" => {
                let v = argv.next().ok_or("--max-ops needs a value")?;
                args.max_ops = Some(
                    parse_u64(&v)
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or(format!("bad --max-ops value: {v}"))?,
                );
            }
            "--variant" => {
                args.variant = Some(argv.next().ok_or("--variant needs a value")?);
            }
            "--profile" => args.profile = true,
            other if other.starts_with("--profile=") => {
                args.profile = true;
                let path = &other["--profile=".len()..];
                if path.is_empty() {
                    return Err("--profile= needs a file name".to_string());
                }
                args.profile_out = Some(path.to_string());
            }
            other if !other.starts_with('-') => args.positional.push(other.to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok((cmd, args))
}

fn usage() -> String {
    "usage: specrt-check <fuzz|replay|interleave|model|coverage|campaign> \
     [--cases N] [--seed S] [--jobs N] [--inject drop-ronly] \
     [--lines N] [--elems N] [--procs N] [--max-ops N] [--variant nonpriv|priv|priv3] \
     [--fault-seeds N] [--rates ppm,ppm,..] [--nodes n,n,..] [--node-at c,c,..|never] \
     [--ckpt-every N] [--out FILE] [--profile[=FILE]] [seed]"
        .to_string()
}

fn print_failure(f: &FuzzFailure) {
    println!("seed {:#x} disagrees with the oracle:", f.seed);
    for m in &f.mismatches {
        println!("  {m}");
    }
    println!("shrunk to {} accesses:", f.shrunk.accesses());
    print!("{}", render_case(&f.shrunk));
}

fn cmd_fuzz(args: &Args) -> ExitCode {
    let _guard = args.inject.map(fault::Injected::new);
    let report = fuzz_jobs(args.cases, args.seed, args.jobs);
    print!("{}", report.render());
    if args.profile {
        // Telemetry is scheduling-dependent for jobs > 1 — stderr only.
        let p = &report.pool;
        eprintln!(
            "worker pool: {} worker(s), {} case(s), claims {:?}, imbalance {}",
            p.workers,
            p.items,
            p.claimed,
            p.imbalance()
        );
    }
    match args.inject {
        None => {
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some(k) => {
            // An injected bug must be caught, with a small witness.
            match report.failures.first() {
                Some(f) if f.shrunk.accesses() <= 8 => {
                    println!(
                        "injected bug '{}' caught; shrunk witness has {} accesses",
                        k.name(),
                        f.shrunk.accesses()
                    );
                    ExitCode::SUCCESS
                }
                Some(f) => {
                    println!(
                        "injected bug '{}' caught but witness kept {} accesses (> 8)",
                        k.name(),
                        f.shrunk.accesses()
                    );
                    ExitCode::FAILURE
                }
                None => {
                    println!("injected bug '{}' was NOT caught", k.name());
                    ExitCode::FAILURE
                }
            }
        }
    }
}

fn cmd_replay(args: &Args) -> ExitCode {
    let Some(seed) = args.positional.first().and_then(|s| parse_u64(s)) else {
        eprintln!("usage: specrt-check replay <seed>");
        return ExitCode::FAILURE;
    };
    let _guard = args.inject.map(fault::Injected::new);
    println!("replaying seed {seed:#x}:");
    print!("{}", render_case(&CaseSpec::generate(seed)));
    match replay(seed) {
        None => {
            println!("agrees with the oracle");
            ExitCode::SUCCESS
        }
        Some(f) => {
            print_failure(&f);
            ExitCode::FAILURE
        }
    }
}

fn cmd_interleave(args: &Args) -> ExitCode {
    if args.scope_given() || args.variant.is_some() || args.max_ops.is_some() {
        // The enumerator grew into the model checker; an explicit scope
        // selects it (the flag set is shared with `model`).
        return cmd_model(args);
    }
    let mut cov = Coverage::new();
    let summary = enumerate_small_scope_jobs(&mut cov, args.jobs);
    println!(
        "interleave: {} scripts, {} states, {} violation(s), {} conservative script(s)",
        summary.scripts, summary.states, summary.violations, summary.conservative
    );
    print_coverage(&cov);
    if summary.violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_model(args: &Args) -> ExitCode {
    let (scope, variants) = match (args.scope(), args.variants()) {
        (Ok(s), Ok(v)) => (s, v),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let _guard = args.inject.map(fault::Injected::new);
    let mut all_ok = true;
    let mut all_covered = true;
    for variant in &variants {
        let report = run_model(&ModelConfig {
            variant: *variant,
            scope,
            max_ops: args.max_ops.unwrap_or(DEFAULT_MAX_OPS),
            jobs: args.jobs,
        });
        print!("{}", report.render());
        all_ok &= report.ok();
        if !report.coverage.complete() {
            all_covered = false;
            println!(
                "model {}: race cases NOT visited: {:?}",
                variant.name(),
                report.coverage.unvisited()
            );
        }
    }
    match args.inject {
        // A deliberately broken protocol must be caught by the checker.
        Some(k) => {
            if all_ok {
                println!(
                    "injected bug '{}' was NOT caught by the model checker",
                    k.name()
                );
                ExitCode::FAILURE
            } else {
                println!("injected bug '{}' caught (counterexample above)", k.name());
                ExitCode::SUCCESS
            }
        }
        None => {
            if all_ok && all_covered {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn print_coverage(cov: &Coverage) {
    print!("race-case coverage:");
    for (i, n) in cov.counts.iter().enumerate() {
        print!(" {}={}", (b'a' + i as u8) as char, n);
    }
    println!();
}

fn cmd_coverage(args: &Args) -> ExitCode {
    // The enumerator guarantees every letter is reachable; the fuzzer's
    // protocol statistics show the full machine reaches them too.
    let mut cov = Coverage::new();
    let summary = enumerate_small_scope_jobs(&mut cov, args.jobs);
    let report = fuzz_jobs(args.cases, args.seed, args.jobs);
    for c in report.visited_race_cases() {
        cov.counts[(c as u8 - b'a') as usize] += 1;
    }
    print_coverage(&cov);
    println!(
        "fuzz race cases: {:?}; enumeration violations: {}",
        report.visited_race_cases(),
        summary.violations
    );
    if summary.violations > 0 || !report.ok() {
        return ExitCode::FAILURE;
    }
    // The model checker must also reach every race site, per protocol
    // variant (the scope flags widen this; the default smoke scope is the
    // smallest that covers all eight letters everywhere).
    let mut model_ok = true;
    for variant in SpecVariant::ALL {
        let mut cfg = ModelConfig::smoke(variant);
        if args.scope_given() || args.max_ops.is_some() {
            match args.scope() {
                Ok(scope) => cfg.scope = scope,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            cfg.max_ops = args.max_ops.unwrap_or(DEFAULT_MAX_OPS);
        }
        cfg.jobs = args.jobs;
        let model = run_model(&cfg);
        print!("model {} coverage:", variant.name());
        for (i, n) in model.coverage.counts.iter().enumerate() {
            print!(" {}={}", (b'a' + i as u8) as char, n);
        }
        println!();
        if !model.ok() || !model.coverage.complete() {
            model_ok = false;
            println!(
                "model {}: violations {} / race cases NOT visited: {:?}",
                variant.name(),
                model.violations + model.invariant_violations,
                model.coverage.unvisited()
            );
        }
    }
    let missing = cov.unvisited();
    if missing.is_empty() && model_ok {
        println!("all race cases (a)-(h) visited");
        ExitCode::SUCCESS
    } else {
        if !missing.is_empty() {
            println!("race cases NOT visited: {missing:?}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_campaign(args: &Args) -> ExitCode {
    let mut cfg = CampaignConfig::default();
    if args.cases_set {
        cfg.cases = args.cases;
    }
    if let Some(fs) = args.fault_seeds {
        cfg.fault_seeds = fs;
    }
    if let Some(rates) = &args.rates_ppm {
        cfg.rates_ppm = rates.clone();
    }
    // Surface out-of-range rates here, with the accepted range, instead of
    // panicking deep inside the fault plane mid-campaign.
    for &rate in &cfg.rates_ppm {
        let probe = FaultConfig {
            drop_ppm: rate,
            ..FaultConfig::none()
        };
        if let Err(e) = probe.validate() {
            eprintln!("bad --rates value: {e}");
            return ExitCode::FAILURE;
        }
    }
    if args.nodes.is_some() || args.node_at.is_some() || args.ckpt_every.is_some() {
        let mut ng = NodeGridConfig::default();
        if let Some(nodes) = &args.nodes {
            ng.nodes = nodes.clone();
        }
        if let Some(ats) = &args.node_at {
            ng.at_cycles = ats.clone();
        }
        if let Some(every) = args.ckpt_every {
            ng.recovery = RecoveryPolicy::CheckpointRestart {
                checkpoint: CheckpointConfig { every_iters: every },
            };
        }
        if ng.nodes.is_empty() || ng.at_cycles.is_empty() {
            eprintln!("the node grid needs at least one node and one at-cycle");
            return ExitCode::FAILURE;
        }
        cfg.node_grid = Some(ng);
    }
    if cfg.cases == 0 || cfg.fault_seeds == 0 || cfg.rates_ppm.is_empty() {
        eprintln!("campaign needs at least one case, fault seed and rate");
        return ExitCode::FAILURE;
    }
    let _guard = args.inject.map(fault::Injected::new);
    let report = run_campaign(&cfg, args.jobs);
    let json = report.render_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("campaign report written to {path}");
        }
        None => print!("{json}"),
    }
    println!(
        "campaign: {} cells x {} runs, {} image mismatch(es)",
        report.cells.len() + report.node_cells.len(),
        report.runs_per_cell,
        report.image_mismatches()
    );
    match args.inject {
        // A deliberately broken recovery path must be caught by the
        // serial-oracle image check (exit code inverts, as for fuzz/model).
        Some(k) => {
            if report.ok() {
                println!("injected bug '{}' was NOT caught by the campaign", k.name());
                ExitCode::FAILURE
            } else {
                println!("injected bug '{}' caught by the image check", k.name());
                ExitCode::SUCCESS
            }
        }
        None => {
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// Prints the ranked self-time table to stderr and, if asked, writes the
/// host-span Chrome timeline. Runs after the command so the deterministic
/// stdout output is complete before any profile text appears.
fn finish_profile(args: &Args) {
    let report = specrt_prof::take_report();
    specrt_prof::set_enabled(false);
    eprint!("{}", report.render_table(20));
    if let Some(path) = &args.profile_out {
        let doc = specrt_trace::export::chrome_host_trace(&report);
        match std::fs::write(path, doc) {
            Ok(()) => eprintln!("host timeline written to {path} (Chrome trace_events)"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args()) {
        Ok((cmd, args)) => {
            if args.profile {
                specrt_prof::set_enabled(true);
            }
            let code = match cmd.as_str() {
                "fuzz" => cmd_fuzz(&args),
                "replay" => cmd_replay(&args),
                "interleave" => cmd_interleave(&args),
                "model" => cmd_model(&args),
                "coverage" => cmd_coverage(&args),
                "campaign" => cmd_campaign(&args),
                other => {
                    eprintln!("unknown command: {other}\n{}", usage());
                    ExitCode::FAILURE
                }
            };
            if args.profile {
                finish_profile(&args);
            }
            code
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
