//! Random loop generation for the differential fuzzer.
//!
//! A [`CaseSpec`] is a tiny, fully explicit description of one
//! subscripted-subscript loop: how many processors, how many elements of the
//! array under test, the iteration schedule, and the exact sequence of
//! reads/writes each iteration performs. It deterministically expands to a
//! [`LoopSpec`] whose body is a chain of `iter == i` branches, so the same
//! seed always produces the same machine-visible access stream.
//!
//! Seeds 0..[`TEMPLATE_SEEDS`] are hand-written templates covering the
//! degenerate shapes `tests/edge_cases.rs` also pins down (0-iteration loop,
//! single-element array, all processors hammering one element, write-only
//! loop, …); larger seeds are drawn from [`SplitMix64`].

use specrt_engine::SplitMix64;
use specrt_ir::{ArrayId, BinOp, Operand, Program, ProgramBuilder};
use specrt_machine::{ArrayDecl, LoopSpec, ScheduleKind};
use specrt_mem::ElemSize;
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

/// The array under the run-time test.
pub const ARR_A: ArrayId = ArrayId(0);
/// A plain per-iteration output array (keeps every iteration observable in
/// the final memory image even when it never touches [`ARR_A`]).
pub const ARR_OUT: ArrayId = ArrayId(1);

/// Number of hand-written template seeds preceding the random ones.
pub const TEMPLATE_SEEDS: u64 = 9;

/// One access to the array under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load element `.0` into the running accumulator.
    Read(u64),
    /// Store a value derived from the accumulator to element `.0`.
    Write(u64),
}

/// A generated test case: the access pattern of one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// Seed this case was generated from (0 after shrinking).
    pub seed: u64,
    /// Processor count.
    pub procs: u32,
    /// Length of the array under test.
    pub elems: u64,
    /// Iteration schedule.
    pub schedule: ScheduleKind,
    /// `ops[i]` = ordered accesses of iteration `i`.
    pub ops: Vec<Vec<Op>>,
}

impl CaseSpec {
    /// Iteration count.
    pub fn iters(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Total number of accesses to the array under test (the size metric
    /// the shrinker minimizes).
    pub fn accesses(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }

    /// Static iteration→processor assignment, or `None` for dynamic
    /// schedules (whose assignment depends on timing).
    pub fn assignment(&self) -> Option<Vec<u32>> {
        let iters = self.iters();
        match self.schedule {
            ScheduleKind::Static => {
                let chunk = iters.div_ceil(self.procs as u64).max(1);
                Some(
                    (0..iters)
                        .map(|i| ((i / chunk) as u32).min(self.procs - 1))
                        .collect(),
                )
            }
            ScheduleKind::BlockCyclic { block } => Some(
                (0..iters)
                    .map(|i| ((i / block) % self.procs as u64) as u32)
                    .collect(),
            ),
            ScheduleKind::Dynamic { .. } => None,
        }
    }

    /// Expands the case to a full loop body program.
    ///
    /// Each iteration `i` runs its own `ops[i]` sequence: reads fold the
    /// loaded value into an accumulator, writes store `acc + c(i,k,e)` for a
    /// per-site constant, and every iteration ends by storing the
    /// accumulator to `ARR_OUT[i]`. Distinct write sites store distinct
    /// values, so a mis-ordered execution is visible in the final image.
    pub fn body(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let acc = b.mov(Operand::ImmI(0));
        let done = b.label();
        for (i, iter_ops) in self.ops.iter().enumerate() {
            let skip = b.label();
            let is_i = b.binop(BinOp::CmpEq, Operand::Iter, Operand::ImmI(i as i64));
            b.bz(Operand::Reg(is_i), skip);
            for (k, op) in iter_ops.iter().enumerate() {
                match *op {
                    Op::Read(e) => {
                        let v = b.load(ARR_A, Operand::ImmI(e as i64));
                        b.binop_into(acc, BinOp::Add, Operand::Reg(acc), Operand::Reg(v));
                    }
                    Op::Write(e) => {
                        let c = (i as i64) * 131 + (k as i64) * 17 + e as i64 + 1;
                        let v = b.binop(BinOp::Add, Operand::Reg(acc), Operand::ImmI(c));
                        b.store(ARR_A, Operand::ImmI(e as i64), Operand::Reg(v));
                    }
                }
            }
            b.store(ARR_OUT, Operand::Iter, Operand::Reg(acc));
            b.jmp(done);
            b.bind(skip);
        }
        b.store(ARR_OUT, Operand::Iter, Operand::Reg(acc));
        b.bind(done);
        b.build().expect("generated program is well-formed")
    }

    /// Expands the case to a [`LoopSpec`] putting [`ARR_A`] under
    /// `protocol`. `live` controls whether `ARR_A` is in `live_after`
    /// (read-in-free privatization requires it dead after the loop).
    pub fn loop_spec(&self, protocol: ProtocolKind, live: bool) -> LoopSpec {
        let mut plan = TestPlan::new();
        plan.set(ARR_A, protocol);
        let mut live_after = vec![ARR_OUT];
        if live {
            live_after.insert(0, ARR_A);
        }
        LoopSpec {
            name: format!("fuzz/seed{:#x}", self.seed),
            body: self.body(),
            iters: self.iters(),
            arrays: vec![
                ArrayDecl::zeroed(ARR_A, self.elems, ElemSize::W8),
                ArrayDecl::zeroed(ARR_OUT, self.iters().max(1), ElemSize::W8),
            ],
            plan,
            numbering: IterationNumbering::iteration_wise(),
            schedule: self.schedule,
            live_after,
            stamp_window: None,
        }
    }

    /// Generates the case for `seed`: a template for small seeds, random
    /// otherwise.
    pub fn generate(seed: u64) -> CaseSpec {
        if seed < TEMPLATE_SEEDS {
            return template(seed);
        }
        let mut rng = SplitMix64::new(seed);
        let procs = 2 + rng.below(3) as u32;
        let elems = 1 + rng.below(6);
        let schedule = match rng.below(4) {
            0 | 1 => ScheduleKind::Static,
            2 => ScheduleKind::BlockCyclic {
                block: 1 + rng.below(2),
            },
            _ => ScheduleKind::Dynamic {
                block: 1 + rng.below(2),
            },
        };
        let iters = rng.below(11);
        let ops = (0..iters)
            .map(|_| {
                (0..rng.below(4))
                    .map(|_| {
                        let e = rng.below(elems);
                        if rng.chance(0.5) {
                            Op::Read(e)
                        } else {
                            Op::Write(e)
                        }
                    })
                    .collect()
            })
            .collect();
        CaseSpec {
            seed,
            procs,
            elems,
            schedule,
            ops,
        }
    }
}

/// The hand-written template cases for seeds `0..TEMPLATE_SEEDS`.
fn template(seed: u64) -> CaseSpec {
    use Op::{Read, Write};
    let (procs, elems, schedule, ops): (u32, u64, ScheduleKind, Vec<Vec<Op>>) = match seed {
        // 0-iteration loop: nothing runs, everything must trivially pass.
        0 => (2, 2, ScheduleKind::Static, vec![]),
        // Single-element array, read-only.
        1 => (2, 1, ScheduleKind::Static, vec![vec![Read(0)]; 4]),
        // All processors hammering one element with reads and writes.
        2 => (4, 1, ScheduleKind::Static, vec![vec![Read(0), Write(0)]; 8]),
        // Write-only loop (no flow dependences, only output deps).
        3 => (
            3,
            4,
            ScheduleKind::Static,
            (0..6).map(|i| vec![Write(i % 4)]).collect(),
        ),
        // Fully disjoint per-iteration elements: must pass everywhere.
        4 => (
            2,
            4,
            ScheduleKind::Static,
            (0..4).map(|i| vec![Read(i), Write(i)]).collect(),
        ),
        // Workspace pattern (write then read the same element each
        // iteration): privatizable, not a non-priv doall.
        5 => (2, 2, ScheduleKind::Static, vec![vec![Write(0), Read(0)]; 6]),
        // The injected-fault trigger: two processors read element 0, then
        // the First processor writes it — legal only if ROnly is ignored.
        6 => (
            2,
            2,
            ScheduleKind::Static,
            vec![vec![Read(0)], vec![Write(0)], vec![Read(0)], vec![]],
        ),
        // Cross-processor flow dependence through element 1.
        7 => (
            2,
            2,
            ScheduleKind::BlockCyclic { block: 1 },
            vec![vec![Write(1)], vec![], vec![], vec![Read(1)]],
        ),
        // Hide-a-conflict window (ROADMAP item 5). The array's home is
        // cpu0's node, so cpu1's update messages are the slow leg: cpu1
        // misses line 0 via element 1, then hit-reads element 0 on the
        // clean resident line — that element's First_update is now in
        // flight for a cross-network delay. cpu0, delayed past the fill by
        // four read misses on far lines, exclusive-upgrades line 0 through
        // the untouched element 2 while the update is still traveling (the
        // granted tags show element 0 untouched), then silently
        // dirty-hit-writes element 0 — no message, because the line is
        // dirty. The update lands afterwards and is accepted: directory
        // says First(cpu1), cpu0's cache says Own+NoShr, and no prompt
        // check ever sees both. Only merging the dirty line's tags into
        // the directory before the verdict is read exposes the conflict.
        8 => (
            2,
            64,
            ScheduleKind::Static,
            vec![
                vec![Read(32), Read(40), Read(48), Read(56), Write(2), Write(0)],
                vec![Read(1), Read(0)],
            ],
        ),
        _ => unreachable!("template seeds are 0..TEMPLATE_SEEDS"),
    };
    CaseSpec {
        seed,
        procs,
        elems,
        schedule,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 3, 7, 8, 42, 0x5eed] {
            let a = CaseSpec::generate(seed);
            let b = CaseSpec::generate(seed);
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.procs, b.procs);
            assert_eq!(a.elems, b.elems);
        }
    }

    #[test]
    fn templates_cover_required_degenerate_shapes() {
        // 0-iteration loop.
        assert_eq!(CaseSpec::generate(0).iters(), 0);
        // Single-element array.
        assert_eq!(CaseSpec::generate(1).elems, 1);
        // All processors hammering one element.
        let hammer = CaseSpec::generate(2);
        assert_eq!(hammer.elems, 1);
        assert!(hammer.procs >= 4);
        // Write-only loop.
        assert!(CaseSpec::generate(3)
            .ops
            .iter()
            .flatten()
            .all(|o| matches!(o, Op::Write(_))));
    }

    #[test]
    fn static_assignment_matches_chunking() {
        let c = CaseSpec {
            seed: 0,
            procs: 2,
            elems: 1,
            schedule: ScheduleKind::Static,
            ops: vec![vec![]; 4],
        };
        assert_eq!(c.assignment().unwrap(), vec![0, 0, 1, 1]);
        let bc = CaseSpec {
            schedule: ScheduleKind::BlockCyclic { block: 1 },
            ..c
        };
        assert_eq!(bc.assignment().unwrap(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn body_indexes_stay_in_bounds() {
        for seed in 0..40 {
            let c = CaseSpec::generate(seed);
            for ops in &c.ops {
                for op in ops {
                    let (Op::Read(e) | Op::Write(e)) = op;
                    assert!(*e < c.elems, "seed {seed}: element {e} out of bounds");
                }
            }
        }
    }
}
