//! Canonical (de)serialization and content hashing for simulation requests.
//!
//! The serving layer (`specrt-serve`) memoizes completed simulations in a
//! result cache keyed by a **canonical `u64` content hash** of everything
//! that determines the result: the [`CaseSpec`] (or workload reference),
//! the full [`MachineConfig`], and the protocol variant. Two requests that
//! are semantically identical — however their specs were built, whatever
//! order their JSON fields arrived in — must collide on the same key, and
//! any *field* difference anywhere in the configuration must produce a
//! different key (silent cache aliasing would serve wrong results). A
//! dedicated test perturbs every field one at a time to pin this down.
//!
//! Three pieces live here:
//!
//! * [`Json`] — a tiny dependency-free JSON value (parser + writer). The
//!   repo already *writes* JSON in several exporters; the serving layer is
//!   the first thing that must also *read* it, so the value type lives in
//!   this crate where [`CaseSpec`] does.
//! * [`case_to_json`] / [`case_from_json`] — the explicit wire form of a
//!   [`CaseSpec`].
//! * [`CanonHasher`] + [`hash_case_into`] / [`hash_machine_config_into`] /
//!   [`canonical_key`] — the stable content hash. The mixing function is
//!   SplitMix64's finalizer (already the repo's deterministic RNG), chained
//!   over length-prefixed field streams with per-section domain tags; it is
//!   a *content* hash, not `std::hash::Hash` (whose output is explicitly
//!   unstable across releases and platforms).
//!
//! The [`CaseSpec::seed`] field is **provenance, not content**: a shrunk
//! witness (seed 0) and a hand-built spec with identical accesses must hit
//! the same cache line, so the hash covers `procs`/`elems`/`schedule`/`ops`
//! only. The seed still round-trips through the JSON form for replay.

use specrt_cache::{ElemTag, FirstTag};
use specrt_machine::{MachineConfig, RecoveryPolicy, ScheduleKind};
use specrt_proto::{NodeFaultKind, Topology};
use specrt_spec::{DirElem, FlightMsg, PrivateDirElem, ProtocolKind, SpecState};

use crate::generate::{CaseSpec, Op};

// ----------------------------------------------------------------------
// JSON value
// ----------------------------------------------------------------------

/// A parsed JSON value.
///
/// Numbers keep their raw text (`Json::Num`) so 64-bit integers survive
/// exactly (an `f64` detour would corrupt seeds above 2^53); object fields
/// keep arrival order, and lookups are linear — requests are small.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in arrival order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document. Trailing whitespace is allowed; trailing
    /// non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }

    /// Field `key` of an object (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace). Field order is
    /// preserved, so a value built deterministically renders
    /// deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Convenience constructor for an unsigned integer number.
    pub fn num_u64(n: u64) -> Json {
        Json::Num(n.to_string())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

/// Writes `s` as a JSON string literal (quotes, escapes).
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit.as_bytes() {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if b[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            if text.parse::<f64>().is_err() {
                return Err(format!("bad number `{text}` at byte {start}"));
            }
            Ok(Json::Num(text.to_string()))
        }
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

// ----------------------------------------------------------------------
// CaseSpec wire form
// ----------------------------------------------------------------------

/// Serializes a [`CaseSpec`] to its JSON wire form:
///
/// ```json
/// {"seed":"8","procs":2,"elems":4,"schedule":{"kind":"static"},
///  "ops":[[{"r":0},{"w":1}],[]]}
/// ```
///
/// The seed is a *string* so values above 2^53 survive lenient readers.
pub fn case_to_json(case: &CaseSpec) -> Json {
    let schedule = match case.schedule {
        ScheduleKind::Static => Json::Obj(vec![("kind".into(), Json::str("static"))]),
        ScheduleKind::BlockCyclic { block } => Json::Obj(vec![
            ("kind".into(), Json::str("block_cyclic")),
            ("block".into(), Json::num_u64(block)),
        ]),
        ScheduleKind::Dynamic { block } => Json::Obj(vec![
            ("kind".into(), Json::str("dynamic")),
            ("block".into(), Json::num_u64(block)),
        ]),
    };
    let ops = Json::Arr(
        case.ops
            .iter()
            .map(|iter_ops| {
                Json::Arr(
                    iter_ops
                        .iter()
                        .map(|op| match op {
                            Op::Read(e) => Json::Obj(vec![("r".into(), Json::num_u64(*e))]),
                            Op::Write(e) => Json::Obj(vec![("w".into(), Json::num_u64(*e))]),
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    Json::Obj(vec![
        ("seed".into(), Json::str(case.seed.to_string())),
        ("procs".into(), Json::num_u64(case.procs as u64)),
        ("elems".into(), Json::num_u64(case.elems)),
        ("schedule".into(), schedule),
        ("ops".into(), ops),
    ])
}

/// Parses the [`case_to_json`] wire form back into a [`CaseSpec`],
/// validating processor/element bounds so a malformed request cannot panic
/// the simulator. A missing `seed` defaults to 0 (hand-built spec).
pub fn case_from_json(v: &Json) -> Result<CaseSpec, String> {
    let seed = match v.get("seed") {
        None => 0,
        Some(Json::Str(s)) => s.parse().map_err(|_| format!("bad seed `{s}`"))?,
        Some(n) => n.as_u64().ok_or("bad seed")?,
    };
    let procs = v
        .get("procs")
        .and_then(Json::as_u64)
        .ok_or("case needs `procs`")?;
    if !(1..=64).contains(&procs) {
        return Err(format!("procs {procs} out of range 1..=64"));
    }
    let elems = v
        .get("elems")
        .and_then(Json::as_u64)
        .ok_or("case needs `elems`")?;
    if !(1..=1 << 20).contains(&elems) {
        return Err(format!("elems {elems} out of range 1..=2^20"));
    }
    let schedule = match v.get("schedule") {
        None => ScheduleKind::Static,
        Some(s) => {
            let kind = s
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("schedule.kind")?;
            let block = || {
                s.get("block")
                    .and_then(Json::as_u64)
                    .filter(|&b| b >= 1)
                    .ok_or("schedule.block must be >= 1")
            };
            match kind {
                "static" => ScheduleKind::Static,
                "block_cyclic" => ScheduleKind::BlockCyclic { block: block()? },
                "dynamic" => ScheduleKind::Dynamic { block: block()? },
                other => return Err(format!("unknown schedule kind `{other}`")),
            }
        }
    };
    let mut ops = Vec::new();
    for (i, iter_ops) in v
        .get("ops")
        .and_then(Json::as_array)
        .ok_or("case needs `ops`")?
        .iter()
        .enumerate()
    {
        let mut parsed = Vec::new();
        for op in iter_ops.as_array().ok_or("ops rows must be arrays")? {
            let (read, e) = if let Some(e) = op.get("r").and_then(Json::as_u64) {
                (true, e)
            } else if let Some(e) = op.get("w").and_then(Json::as_u64) {
                (false, e)
            } else {
                return Err(format!("iter {i}: each op is {{\"r\":e}} or {{\"w\":e}}"));
            };
            if e >= elems {
                return Err(format!(
                    "iter {i}: element {e} out of bounds (elems={elems})"
                ));
            }
            parsed.push(if read { Op::Read(e) } else { Op::Write(e) });
        }
        ops.push(parsed);
    }
    if ops.len() > 4096 {
        return Err(format!(
            "{} iterations exceed the request cap (4096)",
            ops.len()
        ));
    }
    Ok(CaseSpec {
        seed,
        procs: procs as u32,
        elems,
        schedule,
        ops,
    })
}

// ----------------------------------------------------------------------
// Canonical hashing
// ----------------------------------------------------------------------

/// A stable streaming content hasher.
///
/// Chained SplitMix64 finalization: each written word mixes into the
/// running state through the same avalanche function the repo's RNG uses.
/// Stable across platforms and releases by construction (unlike
/// `std::hash::Hash`), and documented here as **hash format v1** — bump
/// [`CANON_VERSION`] if the field order or mixing ever changes, so stale
/// cache keys can never alias fresh ones.
#[derive(Debug, Clone)]
pub struct CanonHasher {
    state: u64,
}

/// Version tag folded into every [`canonical_key`]; bump on any change to
/// the hashed field set, order, or mixing function.
pub const CANON_VERSION: u64 = 1;

fn mix(state: u64, v: u64) -> u64 {
    let mut z = state ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for CanonHasher {
    fn default() -> Self {
        CanonHasher::new()
    }
}

impl CanonHasher {
    /// Creates a hasher seeded with the format version.
    pub fn new() -> Self {
        CanonHasher {
            state: mix(0x5bec_817e_ca40_0a11, CANON_VERSION),
        }
    }

    /// Mixes in one 64-bit word.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.state = mix(self.state, v);
        self
    }

    /// Mixes in a bool (as 0/1 with a domain offset so `false` differs from
    /// an absent field).
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_u64(0x0b00_0000 | v as u64)
    }

    /// Mixes in a string: length prefix, then bytes in 8-byte words.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
        self
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        // One extra avalanche so short inputs still fill all 64 bits.
        mix(self.state, 0xF1A1)
    }
}

/// Hashes the semantic content of a [`CaseSpec`] (everything but the seed —
/// see the module docs for why provenance stays out of the key).
pub fn hash_case_into(h: &mut CanonHasher, case: &CaseSpec) {
    h.write_str("case");
    h.write_u64(case.procs as u64);
    h.write_u64(case.elems);
    match case.schedule {
        ScheduleKind::Static => {
            h.write_u64(0);
        }
        ScheduleKind::BlockCyclic { block } => {
            h.write_u64(1);
            h.write_u64(block);
        }
        ScheduleKind::Dynamic { block } => {
            h.write_u64(2);
            h.write_u64(block);
        }
    }
    h.write_u64(case.ops.len() as u64);
    for iter_ops in &case.ops {
        h.write_u64(iter_ops.len() as u64);
        for op in iter_ops {
            match op {
                Op::Read(e) => {
                    h.write_u64(0x0e_ad);
                    h.write_u64(*e);
                }
                Op::Write(e) => {
                    h.write_u64(0x11_17_e0);
                    h.write_u64(*e);
                }
            }
        }
    }
}

/// Hashes every result-relevant field of a [`MachineConfig`], nested configs
/// included. Ordered exactly as the structs declare their fields; the
/// per-field perturbation test in `tests/canon.rs` fails if a new field is
/// added without extending this function.
pub fn hash_machine_config_into(h: &mut CanonHasher, cfg: &MachineConfig) {
    h.write_str("mem");
    h.write_u64(cfg.mem.procs as u64);
    h.write_u64(cfg.mem.cache.l1_lines as u64);
    h.write_u64(cfg.mem.cache.l2_lines as u64);
    let lat = &cfg.mem.latency;
    for v in [
        lat.l1_hit,
        lat.l2_hit,
        lat.local_mem,
        lat.remote_2hop,
        lat.remote_3hop,
        lat.owner_fetch_extra,
        lat.invalidate_extra,
        lat.net_oneway,
        lat.mem_service,
        lat.update_service,
    ] {
        h.write_u64(v);
    }
    h.write_u64(cfg.mem.dir_banks as u64);
    match cfg.mem.net.topology {
        Topology::Flat => {
            h.write_u64(0);
        }
        Topology::Mesh2D { cols, rows } => {
            h.write_u64(1);
            h.write_u64(cols as u64);
            h.write_u64(rows as u64);
        }
    }
    h.write_u64(cfg.mem.net.hop_latency);
    h.write_u64(cfg.mem.net.link_service);
    let f = &cfg.mem.net.faults;
    h.write_u64(f.seed);
    h.write_u64(f.drop_ppm as u64);
    h.write_u64(f.dup_ppm as u64);
    h.write_u64(f.delay_ppm as u64);
    h.write_u64(f.delay_cycles);
    match f.node_fault {
        None => {
            h.write_u64(0);
        }
        Some(nf) => {
            h.write_u64(1);
            match nf.kind {
                NodeFaultKind::Crash => {
                    h.write_u64(0);
                }
                NodeFaultKind::Pause { for_cycles } => {
                    h.write_u64(1);
                    h.write_u64(for_cycles);
                }
                NodeFaultKind::Partition { for_cycles } => {
                    h.write_u64(2);
                    h.write_u64(for_cycles);
                }
            }
            h.write_u64(nf.node as u64);
            h.write_u64(nf.at_cycle);
        }
    }
    h.write_bool(cfg.mem.dirty_read_downgrades);
    h.write_u64(cfg.mem.retry.timeout);
    h.write_u64(cfg.mem.retry.max_retries as u64);

    h.write_str("machine");
    h.write_u64(cfg.write_buffer as u64);
    h.write_u64(cfg.barrier_overhead);
    h.write_u64(cfg.sched_static_overhead);
    h.write_u64(cfg.sched_lock_hold);
    h.write_u64(cfg.abort_latency);
    h.write_u64(cfg.iter_reset_cost);
    h.write_bool(cfg.detailed_barrier);
    h.write_u64(cfg.trace_capacity as u64);
    h.write_bool(cfg.trace_net);
    match cfg.recovery {
        RecoveryPolicy::SerialReexec => {
            h.write_u64(0);
        }
        RecoveryPolicy::RetrySpeculative { max_attempts } => {
            h.write_u64(1);
            h.write_u64(max_attempts as u64);
        }
        RecoveryPolicy::CheckpointRestart { checkpoint } => {
            h.write_u64(2);
            h.write_u64(checkpoint.every_iters);
        }
    }
}

/// Hashes a protocol-variant label (the serving layer's `protocol` request
/// field, e.g. `"hw-nonpriv"`). A label, not the [`ProtocolKind`] enum,
/// because one request protocol also selects live-value handling and the
/// checked image set in `run_case`.
pub fn hash_protocol_into(h: &mut CanonHasher, protocol: &str) {
    h.write_str("protocol");
    h.write_str(protocol);
}

/// The canonical cache key for one simulation request.
///
/// Covers the semantic case content, the complete machine configuration, and
/// the protocol variant; the [`CANON_VERSION`] tag is folded in by the
/// hasher's seed.
pub fn canonical_key(case: &CaseSpec, cfg: &MachineConfig, protocol: &str) -> u64 {
    let mut h = CanonHasher::new();
    hash_case_into(&mut h, case);
    hash_machine_config_into(&mut h, cfg);
    hash_protocol_into(&mut h, protocol);
    h.finish()
}

/// The bits of one cache element tag, canonically packed.
fn tag_bits(t: ElemTag) -> u64 {
    let first = match t.first() {
        FirstTag::None => 0u64,
        FirstTag::Own => 1,
        FirstTag::Other => 2,
    };
    first
        | (u64::from(t.no_shr()) << 2)
        | (u64::from(t.r_only()) << 3)
        | (u64::from(t.read1st()) << 4)
        | (u64::from(t.write()) << 5)
}

/// Hashes one system-layer protocol state of the bounded model
/// ([`specrt_spec::SpecState`]) plus the per-processor script positions.
/// This is the dedup key of `specrt-check model`'s explicit-frontier
/// search: two exploration paths that converge on the same protocol state
/// and the same remaining work must collide, and any semantic difference
/// (a tag bit, a stamp, an in-flight message, a program counter) must
/// separate. Every field is length-prefixed or variant-tagged so
/// differently-shaped states never alias.
pub fn hash_spec_state_into(h: &mut CanonHasher, s: &SpecState, pcs: &[u16]) {
    h.write_str("spec-state");
    h.write_u64(s.dir.len() as u64);
    for d in &s.dir {
        match d {
            DirElem::NonPriv(e) => {
                h.write_u64(0);
                h.write_u64(e.first.map_or(u64::MAX, |p| p.0 as u64));
                h.write_bool(e.no_shr);
                h.write_bool(e.r_only);
            }
            DirElem::Priv(e) => {
                h.write_u64(1);
                h.write_u64(e.max_r1st);
                h.write_u64(e.min_w);
            }
            DirElem::Priv3(e) => {
                h.write_u64(2);
                h.write_bool(e.any_r1st);
                h.write_bool(e.any_w);
            }
        }
    }
    h.write_u64(s.copies.len() as u64);
    for c in &s.copies {
        match c {
            None => {
                h.write_u64(0);
            }
            Some(c) => {
                h.write_u64(1);
                h.write_bool(c.dirty);
                h.write_u64(c.tags.len() as u64);
                for &t in &c.tags {
                    h.write_u64(tag_bits(t));
                }
            }
        }
    }
    h.write_u64(s.pdir.len() as u64);
    for p in &s.pdir {
        match p {
            PrivateDirElem::Priv { elem, touched } => {
                h.write_u64(0);
                h.write_u64(elem.pmax_r1st);
                h.write_u64(elem.pmax_w);
                h.write_bool(*touched);
            }
            PrivateDirElem::Priv3(e) => {
                h.write_u64(1);
                h.write_bool(e.read1st);
                h.write_bool(e.write);
                h.write_bool(e.write_any);
            }
        }
    }
    h.write_u64(s.inflight.len() as u64);
    for f in &s.inflight {
        h.write_u64(f.src as u64);
        match f.msg {
            FlightMsg::FirstUpdate { elem } => {
                h.write_u64(0);
                h.write_u64(elem as u64);
            }
            FlightMsg::ROnlyUpdate { elem } => {
                h.write_u64(1);
                h.write_u64(elem as u64);
            }
            FlightMsg::FirstUpdateFail { elem, target } => {
                h.write_u64(2);
                h.write_u64(elem as u64);
                h.write_u64(target as u64);
            }
            FlightMsg::ReadFirst { elem, iter } => {
                h.write_u64(3);
                h.write_u64(elem as u64);
                h.write_u64(iter);
            }
            FlightMsg::FirstWrite { elem, iter } => {
                h.write_u64(4);
                h.write_u64(elem as u64);
                h.write_u64(iter);
            }
        }
    }
    h.write_bool(s.failed);
    h.write_u64(pcs.len() as u64);
    for &pc in pcs {
        h.write_u64(pc as u64);
    }
}

/// The model checker's dedup key for one `(protocol state, script
/// positions)` exploration node.
pub fn spec_state_key(s: &SpecState, pcs: &[u16]) -> u64 {
    let mut h = CanonHasher::new();
    hash_spec_state_into(&mut h, s, pcs);
    h.finish()
}

/// Hashes a [`ProtocolKind`] when a key must distinguish raw protocol
/// variants directly (used by config-sweep tooling rather than the serve
/// wire path, which hashes the request label via [`hash_protocol_into`]).
pub fn hash_protocol_kind_into(h: &mut CanonHasher, kind: ProtocolKind) {
    h.write_str("protocol_kind");
    match kind {
        ProtocolKind::Plain => {
            h.write_u64(0);
        }
        ProtocolKind::NonPriv => {
            h.write_u64(1);
        }
        ProtocolKind::Priv { read_in, copy_out } => {
            h.write_u64(2);
            h.write_bool(read_in);
            h.write_bool(copy_out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_values() {
        let text = r#"{"a":1,"b":[true,false,null,"x\n\"y"],"c":{"d":-2.5e3},"seed":"18446744073709551615"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(arr[3].as_str(), Some("x\n\"y"));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2500.0)
        );
        // u64::MAX survives the string detour exactly.
        assert_eq!(
            v.get("seed")
                .unwrap()
                .as_str()
                .unwrap()
                .parse::<u64>()
                .unwrap(),
            u64::MAX
        );
        // Render → parse is a fixpoint.
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\\q\"", "nan"] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn case_json_round_trips() {
        for seed in [0, 1, 5, 7, 8, 0x5eed, 0xdead_beef] {
            let case = CaseSpec::generate(seed);
            let back = case_from_json(&case_to_json(&case)).unwrap();
            assert_eq!(case, back, "seed {seed}");
        }
    }

    #[test]
    fn case_from_json_validates_bounds() {
        let mut base = case_to_json(&CaseSpec::generate(0x5eed));
        assert!(case_from_json(&base).is_ok());
        if let Json::Obj(fields) = &mut base {
            for (k, v) in fields.iter_mut() {
                if k == "procs" {
                    *v = Json::num_u64(65);
                }
            }
        }
        assert!(case_from_json(&base).is_err());
        // An op indexing past `elems` is rejected, not simulated.
        let oob = Json::parse(r#"{"procs":2,"elems":4,"ops":[[{"r":4}]]}"#).unwrap();
        assert!(case_from_json(&oob).unwrap_err().contains("out of bounds"));
    }

    #[test]
    fn hash_is_stable_across_runs() {
        // Pin the v1 hash of a fixed input: this value must never change
        // without bumping CANON_VERSION (stale cache keys must not alias).
        let case = CaseSpec::generate(3);
        let key = canonical_key(&case, &MachineConfig::default(), "hw-nonpriv");
        let again = canonical_key(&case, &MachineConfig::default(), "hw-nonpriv");
        assert_eq!(key, again);
        assert_ne!(key, 0);
    }

    #[test]
    fn seed_is_provenance_not_content() {
        let a = CaseSpec::generate(0x5eed);
        let mut b = a.clone();
        b.seed = 0; // e.g. a shrunk witness re-entered by hand
        assert_eq!(
            canonical_key(&a, &MachineConfig::default(), "hw-priv"),
            canonical_key(&b, &MachineConfig::default(), "hw-priv"),
        );
    }

    #[test]
    fn protocol_label_separates_keys() {
        let case = CaseSpec::generate(9);
        let cfg = MachineConfig::default();
        let keys: Vec<u64> = ["hw-nonpriv", "hw-priv", "hw-priv3", "sw-lrpd", "serial"]
            .iter()
            .map(|p| canonical_key(&case, &cfg, p))
            .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn length_prefix_prevents_concat_aliasing() {
        let mut a = CanonHasher::new();
        a.write_str("ab").write_str("c");
        let mut b = CanonHasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
