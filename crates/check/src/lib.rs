#![warn(missing_docs)]

//! # specrt-check
//!
//! Conformance checking for the speculation machinery: does the full
//! simulated machine — protocols, caches, directories, messages, schedulers
//! — agree with the ground-truth dependence oracle on *every* loop, and do
//! the directory race resolutions of the paper's Figs. 6–9 stay sound under
//! *every* message ordering?
//!
//! Three layers:
//!
//! * [`generate`] + [`diff`] + [`mod@shrink`] + [`mod@fuzz`] — an end-to-end
//!   **differential fuzzer**: random subscripted-subscript loops run under
//!   the non-privatization protocol, both privatization variants and the
//!   software LRPD baseline; every verdict is compared against the trace
//!   oracle of `specrt_lrpd::oracle` and every final memory image against a
//!   serial run. Failures shrink to 1-minimal counterexamples and replay
//!   from a single seed (`specrt-check replay <seed>`).
//! * [`interleave`] — a small-scope **interleaving enumerator** that
//!   DFS-explores every ordering of processor steps, update-message
//!   deliveries and evictions for one cache line under the
//!   non-privatization protocol, proving no ordering lets a non-envelope
//!   access pattern pass, with coverage accounting for race cases (a)–(h).
//! * [`model`] — a **bounded model checker** over the pure
//!   [`specrt_spec::ProtocolSpec`] transition function: explicit-frontier
//!   BFS with canonical hashed-state dedup ([`canon::spec_state_key`]) and
//!   processor-symmetry reduction, covering all three protocol variants at
//!   up to 2 lines × 3 elems × 4 procs, parallelized per script with
//!   byte-identical reports at any worker count.
//! * invariant hooks — the `debug_assertions` checks this crate leans on
//!   live in `specrt-proto` ([`specrt_proto::MemSystem::assert_invariants`],
//!   per-path in-order delivery) and `specrt-spec` (stamp monotonicity);
//!   [`specrt_spec::fault`] provides the deliberate-bug injection the
//!   harness uses to prove it can catch real protocol regressions.

pub mod campaign;
pub mod canon;
pub mod diff;
pub mod fuzz;
pub mod generate;
pub mod interleave;
pub mod model;
pub mod shrink;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignReport, CellReport, NodeCellReport, NodeGridConfig,
    DELAY_CYCLES, FAULT_KINDS, NODE_FAULT_KINDS, NODE_FAULT_NEVER, NODE_OUTAGE_CYCLES,
};
pub use canon::{
    canonical_key, case_from_json, case_to_json, hash_case_into, hash_machine_config_into,
    hash_protocol_into, hash_protocol_kind_into, hash_spec_state_into, spec_state_key,
    write_json_string, CanonHasher, Json, CANON_VERSION,
};
pub use diff::{node_fault_legs, run_case, CaseResult, Mismatch};
pub use fuzz::{
    case_fails, fuzz, fuzz_jobs, parse_seed, render_case, replay, run_case_full, FuzzFailure,
    FuzzReport, RACE_CASE_KEYS,
};
pub use generate::{CaseSpec, Op, ARR_A, ARR_OUT, TEMPLATE_SEEDS};
pub use interleave::{
    enumerate_small_scope, enumerate_small_scope_jobs, explore_script, script_envelope_holds,
    Coverage, EnumerationSummary, ExploreResult,
};
pub use model::{
    enumerate_scripts, envelope_holds, run_model, Counterexample, ModelConfig, ModelReport, Script,
    DEFAULT_MAX_OPS, MAX_OPS_PER_PROC,
};
pub use shrink::shrink;
