//! Greedy counterexample shrinking.
//!
//! Given a failing [`CaseSpec`] and a predicate that re-checks a candidate,
//! repeatedly tries structurally smaller variants — dropping whole
//! iterations, dropping single accesses, lowering the processor count, and
//! trimming the array — keeping each change only while the candidate still
//! fails. Runs to a fixpoint, so the result is 1-minimal: removing any
//! single access or iteration makes the failure disappear.

use specrt_machine::ScheduleKind;

use crate::generate::{CaseSpec, Op};

/// Shrinks `case` while `fails` keeps returning `true` for the candidate.
///
/// `fails(case)` itself is assumed `true` on entry; the returned case always
/// satisfies the predicate.
pub fn shrink<F: FnMut(&CaseSpec) -> bool>(case: &CaseSpec, mut fails: F) -> CaseSpec {
    let mut cur = case.clone();
    loop {
        let mut improved = false;

        // Drop whole iterations.
        let mut i = 0;
        while i < cur.ops.len() {
            let mut cand = cur.clone();
            cand.ops.remove(i);
            if fails(&cand) {
                cur = cand;
                improved = true;
            } else {
                i += 1;
            }
        }

        // Drop single accesses.
        let mut i = 0;
        while i < cur.ops.len() {
            let mut k = 0;
            while k < cur.ops[i].len() {
                let mut cand = cur.clone();
                cand.ops[i].remove(k);
                if fails(&cand) {
                    cur = cand;
                    improved = true;
                } else {
                    k += 1;
                }
            }
            i += 1;
        }

        // Lower the processor count toward 2.
        while cur.procs > 2 {
            let mut cand = cur.clone();
            cand.procs -= 1;
            if fails(&cand) {
                cur = cand;
                improved = true;
            } else {
                break;
            }
        }

        // Simplify the schedule.
        if cur.schedule != ScheduleKind::Static {
            let mut cand = cur.clone();
            cand.schedule = ScheduleKind::Static;
            if fails(&cand) {
                cur = cand;
                improved = true;
            }
        }

        // Trim the array to the elements actually touched.
        let max_used = cur
            .ops
            .iter()
            .flatten()
            .map(|&(Op::Read(e) | Op::Write(e))| e)
            .max();
        let needed = max_used.map_or(1, |m| m + 1);
        if needed < cur.elems {
            let mut cand = cur.clone();
            cand.elems = needed;
            if fails(&cand) {
                cur = cand;
                improved = true;
            }
        }

        if !improved {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shrinking against a predicate that keys on one specific access must
    /// strip everything else.
    #[test]
    fn shrinks_to_the_essential_access() {
        let case = CaseSpec {
            seed: 99,
            procs: 4,
            elems: 6,
            schedule: ScheduleKind::BlockCyclic { block: 2 },
            ops: vec![
                vec![Op::Read(0), Op::Write(5)],
                vec![Op::Read(3)],
                vec![Op::Write(2), Op::Read(2), Op::Write(5)],
                vec![],
            ],
        };
        let shrunk = shrink(&case, |c| {
            c.ops.iter().flatten().any(|o| *o == Op::Write(5))
        });
        assert_eq!(shrunk.accesses(), 1);
        assert_eq!(shrunk.procs, 2);
        assert_eq!(shrunk.schedule, ScheduleKind::Static);
        assert_eq!(shrunk.elems, 6); // element 5 still touched
        assert_eq!(shrunk.ops.iter().flatten().count(), 1);
    }
}
