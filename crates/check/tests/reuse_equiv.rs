//! Pool-reuse equivalence: a leased-and-reset `MemSystem` must be
//! indistinguishable from a freshly built one.
//!
//! Every scenario runner leases its machine from the thread-local pool
//! (`specrt_machine::pool`), so on a warmed thread runs execute on
//! instances that already ran *other* cases and were reset in place. Any
//! state that survives `reset_for_reuse` — a stale directory entry, an
//! unsorted layout slot, a leftover message watermark — would show up as
//! a divergence between a cold (fresh-thread, fresh-build) run and a warm
//! (pooled) run of the same case. This test renders both byte-for-byte:
//! oracle mismatches, merged protocol stats, the verdict, and the full
//! event trace of the hardware non-privatization run, across the whole
//! pinned fuzz corpus plus one fault-campaign cell.

use std::fmt::Write as _;
use std::path::PathBuf;

use specrt_check::{parse_seed, run_case, CampaignConfig, CaseSpec};
use specrt_machine::{pool, run_scenario_configured, MachineConfig, Scenario};
use specrt_spec::ProtocolKind;

fn corpus_seeds() -> Vec<u64> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut seeds: Vec<u64> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "seed"))
        .map(|e| {
            let text = std::fs::read_to_string(e.path()).expect("seed file readable");
            parse_seed(&text).expect("seed parses")
        })
        .collect();
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

/// Everything observable about one case, rendered canonically.
fn canonical(seed: u64) -> String {
    let case = CaseSpec::generate(seed);
    let r = run_case(&case);
    let mut s = String::new();
    let _ = writeln!(s, "mismatches={:?}", r.mismatches);
    let mut stats: Vec<_> = r.stats.iter().collect();
    stats.sort();
    let _ = writeln!(s, "stats={stats:?}");
    let mut cfg = MachineConfig::with_procs(case.procs);
    cfg.trace_capacity = 1 << 14;
    let np = run_scenario_configured(
        &case.loop_spec(ProtocolKind::NonPriv, true),
        Scenario::Hw,
        cfg,
    );
    let _ = writeln!(
        s,
        "passed={:?} failure={:?} cycles={}",
        np.passed,
        np.failure,
        np.total_cycles.raw()
    );
    for ev in &np.trace {
        let _ = writeln!(s, "{ev:?}");
    }
    s
}

/// Runs `f` on a brand-new thread, whose thread-local pool is empty: every
/// lease inside builds fresh.
fn on_cold_thread<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::spawn(f).join().expect("cold-thread run")
}

#[test]
fn corpus_runs_identically_on_fresh_and_reused_instances() {
    let seeds = corpus_seeds();
    assert!(seeds.len() >= 10);

    // Cold baseline: one fresh thread per seed, nothing pooled.
    let cold: Vec<String> = seeds
        .iter()
        .map(|&seed| on_cold_thread(move || canonical(seed)))
        .collect();

    // Warm the calling thread's pool with every case, then re-run: each
    // canonical() below executes on instances reset after earlier cases.
    for &seed in &seeds {
        let _ = canonical(seed);
    }
    let (_, reuses_before) = pool::counters();
    let warm: Vec<String> = seeds.iter().map(|&seed| canonical(seed)).collect();
    let (_, reuses_after) = pool::counters();
    assert!(
        reuses_after > reuses_before,
        "warm pass must actually exercise pooled instances"
    );

    for ((seed, c), w) in seeds.iter().zip(&cold).zip(&warm) {
        assert_eq!(c, w, "seed {seed:#x}: pooled run diverged from fresh build");
    }
}

#[test]
fn campaign_cell_runs_identically_on_fresh_and_reused_instances() {
    let cfg = CampaignConfig {
        cases: 4,
        fault_seeds: 1,
        rates_ppm: vec![0, 200_000],
        ..CampaignConfig::default()
    };
    let cold = {
        let cfg = cfg.clone();
        on_cold_thread(move || specrt_check::run_campaign(&cfg, 1).render_json())
    };
    // Warm the pool with unrelated corpus work first, then run the same
    // campaign on this (reused) thread.
    for &seed in corpus_seeds().iter().take(4) {
        let _ = canonical(seed);
    }
    let warm = specrt_check::run_campaign(&cfg, 1).render_json();
    assert_eq!(
        cold, warm,
        "campaign cell diverged between fresh and pooled runs"
    );
}
