//! Replay regression over the checked-in seed corpus.
//!
//! Every `corpus/*.seed` file is a case the harness once found interesting
//! (a degenerate shape, or a minimized counterexample of a deliberately
//! injected bug). Each must replay clean against the oracle today; any
//! future oracle disagreement on these seeds is a regression, permanently
//! pinned.

use std::path::PathBuf;

use specrt_check::{parse_seed, replay, run_case, CaseSpec};
use specrt_spec::fault::{FaultKind, Injected};

fn corpus_seeds() -> Vec<(String, u64)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut seeds: Vec<(String, u64)> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "seed"))
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(e.path()).expect("seed file readable");
            let seed = parse_seed(&text)
                .unwrap_or_else(|| panic!("corpus file {name} holds no parsable seed"));
            (name, seed)
        })
        .collect();
    seeds.sort();
    seeds
}

#[test]
fn corpus_is_nonempty_and_replays_clean() {
    let seeds = corpus_seeds();
    assert!(seeds.len() >= 10, "corpus unexpectedly small: {seeds:?}");
    for (name, seed) in seeds {
        let case = CaseSpec::generate(seed);
        let r = run_case(&case);
        assert!(
            r.ok(),
            "corpus seed {name} ({seed:#x}) disagrees with the oracle: {:?}",
            r.mismatches
        );
    }
}

/// A minimized witness must still catch its injected bug — and shrink back
/// to a small counterexample (≤ 8 accesses).
fn assert_witness_catches(file: &str, fault: FaultKind) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let text = std::fs::read_to_string(dir.join(file)).unwrap();
    let seed = parse_seed(&text).unwrap();

    let _guard = Injected::new(fault);
    let failure = replay(seed).unwrap_or_else(|| {
        panic!(
            "witness seed must disagree under {} injection",
            fault.name()
        )
    });
    assert!(
        failure.shrunk.accesses() <= 8,
        "witness no longer shrinks small: {} accesses",
        failure.shrunk.accesses()
    );
    assert!(
        !failure.mismatches.is_empty(),
        "disagreement must name at least one scenario"
    );
}

#[test]
fn drop_ronly_witness_still_catches_the_injected_bug() {
    assert_witness_catches("drop-ronly-witness.seed", FaultKind::DropROnlyCheck);
}

#[test]
fn drop_maxr1st_witness_still_catches_the_injected_bug() {
    assert_witness_catches("drop-maxr1st-witness.seed", FaultKind::DropMaxR1stUpdate);
}

#[test]
fn swap_ts_compare_witness_still_catches_the_injected_bug() {
    assert_witness_catches("swap-ts-compare-witness.seed", FaultKind::SwapTsCompare);
}
