//! Replay regression over the checked-in seed corpus.
//!
//! Every `corpus/*.seed` file is a case the harness once found interesting
//! (a degenerate shape, or a minimized counterexample of a deliberately
//! injected bug). Each must replay clean against the oracle today; any
//! future oracle disagreement on these seeds is a regression, permanently
//! pinned.

use std::path::PathBuf;

use specrt_check::{parse_seed, replay, run_case, CaseSpec};
use specrt_spec::fault::{FaultKind, Injected};

fn corpus_seeds() -> Vec<(String, u64)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut seeds: Vec<(String, u64)> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "seed"))
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(e.path()).expect("seed file readable");
            let seed = parse_seed(&text)
                .unwrap_or_else(|| panic!("corpus file {name} holds no parsable seed"));
            (name, seed)
        })
        .collect();
    seeds.sort();
    seeds
}

#[test]
fn corpus_is_nonempty_and_replays_clean() {
    let seeds = corpus_seeds();
    assert!(seeds.len() >= 10, "corpus unexpectedly small: {seeds:?}");
    for (name, seed) in seeds {
        let case = CaseSpec::generate(seed);
        let r = run_case(&case);
        assert!(
            r.ok(),
            "corpus seed {name} ({seed:#x}) disagrees with the oracle: {:?}",
            r.mismatches
        );
    }
}

/// A minimized witness must still catch its injected bug — and shrink back
/// to a small counterexample (≤ 8 accesses).
fn assert_witness_catches(file: &str, fault: FaultKind) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let text = std::fs::read_to_string(dir.join(file)).unwrap();
    let seed = parse_seed(&text).unwrap();

    let _guard = Injected::new(fault);
    let failure = replay(seed).unwrap_or_else(|| {
        panic!(
            "witness seed must disagree under {} injection",
            fault.name()
        )
    });
    assert!(
        failure.shrunk.accesses() <= 8,
        "witness no longer shrinks small: {} accesses",
        failure.shrunk.accesses()
    );
    assert!(
        !failure.mismatches.is_empty(),
        "disagreement must name at least one scenario"
    );
}

/// The drop-ronly mutant is no longer visible to the *fuzzer*: since the
/// flushed-verdict fix, every dirty line's tags are merged into the
/// directory before the verdict is read, and `merge_writeback`'s own
/// `NoShr && ROnly` envelope check — which the mutation does not disable —
/// re-detects the conflict the dropped directory-side check would have
/// caught promptly. The final verdict is FAIL either way, so the oracle
/// sees no disagreement (confirmed empirically over 40k+ injected cases).
/// The mutant stays caught by the model checker's per-step conformance
/// (`tests/model.rs::model_catches_drop_ronly`), which sees the wrongly
/// *granted* write request, not just the final verdict.
///
/// This test pins the backstop behavior on the original witness: under
/// injection the machine must still FAIL the case — late, at the verdict
/// merge — and must therefore keep agreeing with the oracle.
#[test]
fn drop_ronly_witness_is_caught_late_by_the_verdict_merge() {
    use specrt_machine::{run_scenario, Scenario};
    use specrt_spec::ProtocolKind;

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let text = std::fs::read_to_string(dir.join("drop-ronly-witness.seed")).unwrap();
    let seed = parse_seed(&text).unwrap();
    let case = CaseSpec::generate(seed);

    let _guard = Injected::new(FaultKind::DropROnlyCheck);
    assert!(
        replay(seed).is_none(),
        "verdict-merge backstop must keep the witness oracle-clean under injection"
    );
    let np = run_scenario(
        &case.loop_spec(ProtocolKind::NonPriv, true),
        Scenario::Hw,
        case.procs,
    );
    assert_eq!(
        np.passed,
        Some(false),
        "the conflict the dropped check misses must still FAIL at the verdict merge"
    );
}

/// The hide-a-conflict witness (template seed 8) must fail *at the
/// verdict merge*: the speculative loop runs to quiescence with no prompt
/// failure — a drain-point-only verdict read would wrongly PASS — and
/// only merging the writer's dirty line tags into the directory exposes
/// the write conflict. `verdict_merges` is only incremented on completed
/// (promptly-unfailed) loops, so observing it alongside the FAIL verdict
/// pins exactly that late-detection path.
#[test]
fn hide_a_conflict_witness_fails_only_at_the_verdict_merge() {
    use specrt_machine::{run_scenario, Scenario};
    use specrt_spec::ProtocolKind;

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let text = std::fs::read_to_string(dir.join("hide-a-conflict-witness.seed")).unwrap();
    let seed = parse_seed(&text).unwrap();
    let case = CaseSpec::generate(seed);

    assert!(run_case(&case).ok(), "witness must agree with the oracle");
    let np = run_scenario(
        &case.loop_spec(ProtocolKind::NonPriv, true),
        Scenario::Hw,
        case.procs,
    );
    assert_eq!(np.passed, Some(false), "hidden conflict must FAIL");
    assert!(
        np.stats.get("verdict_merges") >= 1,
        "failure must come from the verdict merge, not a prompt check"
    );
    let failure = np.failure.expect("failed run reports a reason");
    assert!(
        failure.contains("wrote an element first accessed"),
        "expected a write conflict, got: {failure}"
    );
}

#[test]
fn drop_maxr1st_witness_still_catches_the_injected_bug() {
    assert_witness_catches("drop-maxr1st-witness.seed", FaultKind::DropMaxR1stUpdate);
}

#[test]
fn swap_ts_compare_witness_still_catches_the_injected_bug() {
    assert_witness_catches("swap-ts-compare-witness.seed", FaultKind::SwapTsCompare);
}
