//! Debug-build conformance smoke: a bounded differential-fuzz run (with
//! every `debug_assertions` invariant hook live) and the full small-scope
//! interleaving enumeration.

use specrt_check::{enumerate_small_scope, fuzz, Coverage};

#[test]
fn bounded_fuzz_agrees_with_oracle_under_debug_invariants() {
    let report = fuzz(60, 0x5eed);
    assert!(
        report.ok(),
        "differential fuzz found disagreements: {:?}",
        report.failures
    );
    // The templates alone already drive the full machine through the
    // hot-path race cases.
    let visited = report.visited_race_cases();
    for c in ['a', 'b', 'c', 'd', 'e'] {
        assert!(visited.contains(&c), "race case {c} unvisited by fuzz");
    }
}

#[test]
fn interleaving_enumeration_is_sound_and_covers_all_race_cases() {
    let mut cov = Coverage::new();
    let summary = enumerate_small_scope(&mut cov);
    assert_eq!(
        summary.violations, 0,
        "an interleaving let a non-envelope pattern pass"
    );
    assert_eq!(
        summary.conservative, 0,
        "an envelope-holding script never passed"
    );
    assert!(
        cov.complete(),
        "race cases unvisited by the enumerator: {:?}",
        cov.unvisited()
    );
    assert!(summary.states > 1000, "suspiciously small state space");
}
