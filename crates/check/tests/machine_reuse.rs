//! Machine-reuse correctness: `crates/machine`'s thread-local pool hands
//! scenario runs a reset [`specrt_proto::MemSystem`] instead of a fresh
//! one. A reset system must be observationally identical to a fresh build —
//! cycle counts, verdicts, stats and final memory images alike — because
//! the serve cache's byte-identity guarantee (cold = warm) and the fuzz
//! determinism gate both ride on it.

use specrt_check::{run_case, CaseSpec, ARR_A, ARR_OUT};
use specrt_machine::{pool, run_scenario_configured, MachineConfig, RunResult, Scenario};
use specrt_spec::ProtocolKind;

/// One comparable fingerprint of everything a run result observes.
fn fingerprint(r: &RunResult) -> String {
    format!(
        "cycles={:?} breakdown={:?} passed={:?} failure={:?} iters={} a={:?} out={:?} stats=[{}] net_msgs={}",
        r.total_cycles,
        r.breakdown,
        r.passed,
        r.failure,
        r.iterations,
        r.final_image.contents(ARR_A),
        r.final_image.contents(ARR_OUT),
        r.stats,
        r.net.messages,
    )
}

/// Back-to-back scenario runs on one thread (second run leases the pooled,
/// reset machine) match a first run on a fresh thread (fresh build), cycle
/// for cycle and value for value — across every scenario and protocol mix
/// the differential harness exercises.
#[test]
fn pooled_rerun_is_cycle_and_value_identical() {
    for seed in [0, 3, 5, 0x5eed, 0xfeed_f00d] {
        let case = CaseSpec::generate(seed);
        for (scenario, protocol, live) in [
            (Scenario::Serial, ProtocolKind::NonPriv, true),
            (Scenario::Hw, ProtocolKind::NonPriv, true),
            (
                Scenario::Hw,
                ProtocolKind::Priv {
                    read_in: true,
                    copy_out: true,
                },
                true,
            ),
            (
                Scenario::Hw,
                ProtocolKind::Priv {
                    read_in: false,
                    copy_out: false,
                },
                false,
            ),
            (Scenario::Ideal, ProtocolKind::NonPriv, true),
        ] {
            let spec = case.loop_spec(protocol, live);
            let cfg = MachineConfig::with_procs(case.procs);
            let fresh = {
                let spec = spec.clone();
                std::thread::spawn(move || {
                    fingerprint(&run_scenario_configured(&spec, scenario, cfg))
                })
                .join()
                .expect("fresh-thread run")
            };
            let first = fingerprint(&run_scenario_configured(&spec, scenario, cfg));
            let second = fingerprint(&run_scenario_configured(&spec, scenario, cfg));
            assert_eq!(first, second, "seed {seed} {scenario:?}: rerun drifted");
            assert_eq!(
                fresh, first,
                "seed {seed} {scenario:?}: fresh-build drifted"
            );
        }
    }
}

/// The full differential harness (all protocol variants + SW baseline +
/// image checks) agrees with itself across pooled reruns, and the pool
/// actually reuses machines while doing so.
#[test]
fn run_case_is_stable_across_pool_reuse() {
    let (_, reuses_before) = pool::counters();
    for seed in [1, 2, 7, 0xabcd] {
        let case = CaseSpec::generate(seed);
        let a = run_case(&case);
        let b = run_case(&case);
        assert_eq!(a.ok(), b.ok(), "seed {seed}: verdict drifted across reuse");
        assert_eq!(
            format!("{}", a.stats),
            format!("{}", b.stats),
            "seed {seed}: stats drifted across reuse"
        );
    }
    let (_, reuses_after) = pool::counters();
    assert!(
        reuses_after > reuses_before,
        "pool was never hit ({reuses_before} -> {reuses_after})"
    );
}
