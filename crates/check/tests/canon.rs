//! Canonical-hash coverage: the serve result cache keys on
//! `canonical_key(case, cfg, protocol)`, so (1) semantically equal requests
//! must collide — however their specs were built — and (2) **every** field of
//! `CaseSpec` and `MachineConfig` (nested configs included) must perturb the
//! key. A field the hash ignores is silent cache aliasing: two different
//! configurations would serve each other's cached results.

use specrt_check::{canonical_key, CaseSpec, Op};
use specrt_machine::{CheckpointConfig, MachineConfig, RecoveryPolicy, ScheduleKind};
use specrt_proto::{
    CacheConfig, FaultConfig, LatencyConfig, MemSystemConfig, NetConfig, NodeFaultConfig,
    NodeFaultKind, RetryConfig, Topology,
};

const PROTOCOL: &str = "hw-nonpriv";

fn key(case: &CaseSpec, cfg: &MachineConfig) -> u64 {
    canonical_key(case, cfg, PROTOCOL)
}

/// Two semantically equal specs, built in different orders, hash identically.
///
/// One comes straight out of the generator; the other is rebuilt by hand —
/// fields assigned in a different order, `ops` grown back-to-front — and
/// carries a different provenance seed. Only content may matter.
#[test]
fn equal_specs_built_differently_hash_identically() {
    let generated = CaseSpec::generate(0x5eed);

    // Rebuild from parts in reverse: ops rows pushed back-to-front into a
    // pre-sized buffer, scalar fields filled afterwards.
    let mut ops: Vec<Vec<Op>> = vec![Vec::new(); generated.ops.len()];
    for (i, row) in generated.ops.iter().enumerate().rev() {
        for op in row.iter() {
            ops[i].push(*op);
        }
    }
    let rebuilt = CaseSpec {
        ops,
        schedule: generated.schedule,
        elems: generated.elems,
        procs: generated.procs,
        seed: 0, // a hand-entered spec has no generator seed
    };

    let cfg = MachineConfig::default();
    assert_eq!(key(&generated, &cfg), key(&rebuilt, &cfg));
}

/// Every field of `CaseSpec` (except the provenance seed) perturbs the hash.
#[test]
fn every_case_field_perturbs_the_hash() {
    let base = CaseSpec {
        seed: 1,
        procs: 4,
        elems: 8,
        schedule: ScheduleKind::Static,
        ops: vec![vec![Op::Read(0), Op::Write(1)], vec![Op::Write(2)]],
    };
    // Compile-time guard: adding a CaseSpec field breaks this destructuring,
    // pointing whoever adds it at hash_case_into + this test.
    let CaseSpec {
        seed: _,
        procs: _,
        elems: _,
        schedule: _,
        ops: _,
    } = base.clone();

    let cfg = MachineConfig::default();
    let base_key = key(&base, &cfg);

    let mut perturbed: Vec<(&str, CaseSpec)> = Vec::new();
    let mut with = |name: &'static str, f: &dyn Fn(&mut CaseSpec)| {
        let mut c = base.clone();
        f(&mut c);
        perturbed.push((name, c));
    };
    with("procs", &|c| c.procs = 5);
    with("elems", &|c| c.elems = 9);
    with("schedule/block_cyclic", &|c| {
        c.schedule = ScheduleKind::BlockCyclic { block: 2 }
    });
    with("schedule/dynamic", &|c| {
        c.schedule = ScheduleKind::Dynamic { block: 2 }
    });
    with("schedule/block value", &|c| {
        c.schedule = ScheduleKind::BlockCyclic { block: 3 }
    });
    with("ops/element", &|c| c.ops[0][0] = Op::Read(3));
    with("ops/kind", &|c| c.ops[0][0] = Op::Write(0));
    with("ops/extra op", &|c| c.ops[1].push(Op::Read(1)));
    with("ops/extra empty iter", &|c| c.ops.push(Vec::new()));
    with("ops/dropped iter", &|c| {
        c.ops.pop();
    });

    for (name, c) in &perturbed {
        assert_ne!(key(c, &cfg), base_key, "CaseSpec field `{name}` ignored");
    }
    // The seed is provenance, not content: it must NOT perturb.
    let mut reseeded = base.clone();
    reseeded.seed = 999;
    assert_eq!(key(&reseeded, &cfg), base_key);
}

/// Every field of `MachineConfig` — including every field of the nested
/// `MemSystemConfig`, `CacheConfig`, `LatencyConfig`, `NetConfig`,
/// `FaultConfig` and `RetryConfig` — perturbs the hash.
#[test]
fn every_machine_config_field_perturbs_the_hash() {
    let base = MachineConfig::default();
    // Compile-time guards: adding a field to any config struct breaks the
    // matching destructuring below, pointing at hash_machine_config_into.
    let MachineConfig {
        mem,
        write_buffer: _,
        barrier_overhead: _,
        sched_static_overhead: _,
        sched_lock_hold: _,
        abort_latency: _,
        iter_reset_cost: _,
        detailed_barrier: _,
        trace_capacity: _,
        trace_net: _,
        recovery: _,
    } = base;
    let MemSystemConfig {
        procs: _,
        cache,
        latency,
        dir_banks: _,
        net,
        dirty_read_downgrades: _,
        retry,
    } = mem;
    let CacheConfig {
        l1_lines: _,
        l2_lines: _,
    } = cache;
    let LatencyConfig {
        l1_hit: _,
        l2_hit: _,
        local_mem: _,
        remote_2hop: _,
        remote_3hop: _,
        owner_fetch_extra: _,
        invalidate_extra: _,
        net_oneway: _,
        mem_service: _,
        update_service: _,
    } = latency;
    let NetConfig {
        topology: _,
        hop_latency: _,
        link_service: _,
        faults,
    } = net;
    let FaultConfig {
        seed: _,
        drop_ppm: _,
        dup_ppm: _,
        delay_ppm: _,
        delay_cycles: _,
        node_fault: _,
    } = faults;
    let RetryConfig {
        timeout: _,
        max_retries: _,
    } = retry;

    let case = CaseSpec::generate(3);
    let base_key = key(&case, &base);

    let mut perturbed: Vec<(&str, MachineConfig)> = Vec::new();
    let mut with = |name: &'static str, f: &dyn Fn(&mut MachineConfig)| {
        let mut c = base;
        f(&mut c);
        perturbed.push((name, c));
    };

    with("mem.procs", &|c| c.mem.procs += 1);
    with("mem.cache.l1_lines", &|c| c.mem.cache.l1_lines += 1);
    with("mem.cache.l2_lines", &|c| c.mem.cache.l2_lines += 1);
    with("mem.latency.l1_hit", &|c| c.mem.latency.l1_hit += 1);
    with("mem.latency.l2_hit", &|c| c.mem.latency.l2_hit += 1);
    with("mem.latency.local_mem", &|c| c.mem.latency.local_mem += 1);
    with("mem.latency.remote_2hop", &|c| {
        c.mem.latency.remote_2hop += 1
    });
    with("mem.latency.remote_3hop", &|c| {
        c.mem.latency.remote_3hop += 1
    });
    with("mem.latency.owner_fetch_extra", &|c| {
        c.mem.latency.owner_fetch_extra += 1
    });
    with("mem.latency.invalidate_extra", &|c| {
        c.mem.latency.invalidate_extra += 1
    });
    with("mem.latency.net_oneway", &|c| c.mem.latency.net_oneway += 1);
    with("mem.latency.mem_service", &|c| {
        c.mem.latency.mem_service += 1
    });
    with("mem.latency.update_service", &|c| {
        c.mem.latency.update_service += 1
    });
    with("mem.dir_banks", &|c| c.mem.dir_banks += 1);
    with("mem.net.topology", &|c| {
        c.mem.net.topology = Topology::Mesh2D { cols: 4, rows: 4 }
    });
    with("mem.net.topology shape", &|c| {
        c.mem.net.topology = Topology::Mesh2D { cols: 2, rows: 8 }
    });
    with("mem.net.hop_latency", &|c| c.mem.net.hop_latency += 1);
    with("mem.net.link_service", &|c| c.mem.net.link_service += 1);
    with("mem.net.faults.seed", &|c| c.mem.net.faults.seed += 1);
    with("mem.net.faults.drop_ppm", &|c| {
        c.mem.net.faults.drop_ppm += 1
    });
    with("mem.net.faults.dup_ppm", &|c| c.mem.net.faults.dup_ppm += 1);
    with("mem.net.faults.delay_ppm", &|c| {
        c.mem.net.faults.delay_ppm += 1
    });
    with("mem.net.faults.delay_cycles", &|c| {
        c.mem.net.faults.delay_cycles += 1
    });
    with("mem.net.faults.node_fault", &|c| {
        c.mem.net.faults.node_fault = Some(NodeFaultConfig {
            kind: NodeFaultKind::Crash,
            node: 1,
            at_cycle: 100,
        })
    });
    with("mem.net.faults.node_fault.kind", &|c| {
        c.mem.net.faults.node_fault = Some(NodeFaultConfig {
            kind: NodeFaultKind::Pause { for_cycles: 500 },
            node: 1,
            at_cycle: 100,
        })
    });
    with("mem.net.faults.node_fault.kind shape", &|c| {
        c.mem.net.faults.node_fault = Some(NodeFaultConfig {
            kind: NodeFaultKind::Partition { for_cycles: 500 },
            node: 1,
            at_cycle: 100,
        })
    });
    with("mem.net.faults.node_fault.for_cycles", &|c| {
        c.mem.net.faults.node_fault = Some(NodeFaultConfig {
            kind: NodeFaultKind::Pause { for_cycles: 501 },
            node: 1,
            at_cycle: 100,
        })
    });
    with("mem.net.faults.node_fault.node", &|c| {
        c.mem.net.faults.node_fault = Some(NodeFaultConfig {
            kind: NodeFaultKind::Crash,
            node: 2,
            at_cycle: 100,
        })
    });
    with("mem.net.faults.node_fault.at_cycle", &|c| {
        c.mem.net.faults.node_fault = Some(NodeFaultConfig {
            kind: NodeFaultKind::Crash,
            node: 1,
            at_cycle: 101,
        })
    });
    with("mem.dirty_read_downgrades", &|c| {
        c.mem.dirty_read_downgrades = !c.mem.dirty_read_downgrades
    });
    with("mem.retry.timeout", &|c| c.mem.retry.timeout += 1);
    with("mem.retry.max_retries", &|c| c.mem.retry.max_retries += 1);
    with("write_buffer", &|c| c.write_buffer += 1);
    with("barrier_overhead", &|c| c.barrier_overhead += 1);
    with("sched_static_overhead", &|c| c.sched_static_overhead += 1);
    with("sched_lock_hold", &|c| c.sched_lock_hold += 1);
    with("abort_latency", &|c| c.abort_latency += 1);
    with("iter_reset_cost", &|c| c.iter_reset_cost += 1);
    with("detailed_barrier", &|c| {
        c.detailed_barrier = !c.detailed_barrier
    });
    with("trace_capacity", &|c| c.trace_capacity += 1);
    with("trace_net", &|c| c.trace_net = !c.trace_net);
    with("recovery", &|c| {
        c.recovery = RecoveryPolicy::RetrySpeculative { max_attempts: 1 }
    });
    with("recovery/max_attempts", &|c| {
        c.recovery = RecoveryPolicy::RetrySpeculative { max_attempts: 2 }
    });
    with("recovery/checkpoint_restart", &|c| {
        c.recovery = RecoveryPolicy::CheckpointRestart {
            checkpoint: CheckpointConfig { every_iters: 16 },
        }
    });
    with("recovery/checkpoint.every_iters", &|c| {
        c.recovery = RecoveryPolicy::CheckpointRestart {
            checkpoint: CheckpointConfig { every_iters: 32 },
        }
    });

    // Every perturbation moves the key away from the base...
    for (name, cfg) in &perturbed {
        assert_ne!(
            key(&case, cfg),
            base_key,
            "MachineConfig field `{name}` ignored by the canonical hash"
        );
    }
    // ...and no two single-field perturbations collide with each other
    // (cheap sanity that the mixing actually avalanches per field).
    for i in 0..perturbed.len() {
        for j in i + 1..perturbed.len() {
            assert_ne!(
                key(&case, &perturbed[i].1),
                key(&case, &perturbed[j].1),
                "`{}` and `{}` collide",
                perturbed[i].0,
                perturbed[j].0
            );
        }
    }
}
