//! Mutation self-test for the bounded model checker: each deliberately
//! injectable protocol bug ([`specrt_spec::fault::FaultKind`]) must be
//! caught by [`specrt_check::run_model`] at a reduced scope, with a minimal
//! counterexample script attached. A checker that cannot find a known-wrong
//! protocol is not evidence of anything — this suite is the proof it can.
//!
//! The scopes here are deliberately tiny (1 line, 2 elems, 2 procs, 2–3
//! total accesses): each bug already manifests there, and because the
//! script universe is enumerated smallest-first, the counterexample the
//! checker reports is the *minimal* script exhibiting the bug.

use specrt_check::{run_model, ModelConfig, Op, Script};
use specrt_spec::{fault, SpecScope, SpecVariant};

/// Runs the model checker with `bug` injected, asserts it is caught, and
/// returns the rendered minimal counterexample.
fn catch(bug: fault::FaultKind, cfg: &ModelConfig) -> String {
    let _guard = fault::Injected::new(bug);
    let report = run_model(cfg);
    assert!(
        !report.ok(),
        "injected bug '{}' was NOT caught at {}x{}x{} max-ops {}",
        bug.name(),
        cfg.scope.lines,
        cfg.scope.elems,
        cfg.scope.procs,
        cfg.max_ops
    );
    let cex = report
        .counterexample
        .as_ref()
        .expect("a caught bug must come with a counterexample");
    let rendered = cex.render();
    // Print it so `cargo test -- --nocapture` shows the minimal witness.
    println!("--- {} ---\n{rendered}", bug.name());
    rendered
}

#[test]
fn model_catches_drop_ronly() {
    // Fig. 6 case (c): the write test ignores the ROnly bit, so a write
    // request for an element another processor already read is wrongly
    // granted. The grant leaves the directory element NoShr AND ROnly — a
    // write-exclusive-yet-read-shared contradiction the clean protocol
    // always FAILs instead of entering — so the directory-consistency
    // invariant catches it. Minimal witness: one reader races one
    // read-then-write processor — 3 accesses on 1 line, 2 elems, 2 procs.
    let cfg = ModelConfig {
        max_ops: 3,
        ..ModelConfig::smoke(SpecVariant::NonPriv)
    };
    let rendered = catch(fault::FaultKind::DropROnlyCheck, &cfg);
    let cex_ops = script_ops(&rendered);
    assert!(
        cex_ops <= 3,
        "drop-ronly counterexample should be minimal, got {cex_ops} ops:\n{rendered}"
    );
}

#[test]
fn model_catches_drop_maxr1st() {
    // Fig. 8 cases (d)/(e): read-first iterations are tested but never
    // recorded in MaxR1st, so a later first-write compares against a stale
    // stamp. Minimal witness: a read-first by one processor and a write by
    // an earlier-stamped one — 2 accesses total.
    let cfg = ModelConfig {
        max_ops: 2,
        ..ModelConfig::smoke(SpecVariant::Priv)
    };
    let rendered = catch(fault::FaultKind::DropMaxR1stUpdate, &cfg);
    let cex_ops = script_ops(&rendered);
    assert!(
        cex_ops <= 2,
        "drop-maxr1st counterexample should be minimal, got {cex_ops} ops:\n{rendered}"
    );
}

#[test]
fn model_catches_swap_ts_compare() {
    // Fig. 8 with the time-stamp comparison inverted: legal read-firsts
    // FAIL and genuine flow dependences pass, corrupting stamps in both
    // directions — so this bug trips the envelope check *and* the MaxR1st /
    // MinW monotonicity invariant.
    let cfg = ModelConfig {
        max_ops: 2,
        ..ModelConfig::smoke(SpecVariant::Priv)
    };
    let _guard = fault::Injected::new(fault::FaultKind::SwapTsCompare);
    let report = run_model(&cfg);
    assert!(!report.ok(), "swap-ts-compare was NOT caught");
    assert!(
        report.invariant_violations > 0,
        "the inverted comparison corrupts stamps, so the monotonicity \
         invariant must fire (got {} envelope violations, 0 invariant \
         violations)",
        report.violations
    );
    let cex = report.counterexample.expect("counterexample");
    println!("--- swap-ts-compare ---\n{}", cex.render());
}

#[test]
fn clean_protocols_pass_and_cover_all_race_cases_at_smoke_scope() {
    // The flip side of the mutation tests: with no fault injected, no
    // ordering of any script at the CI smoke scope may violate the
    // envelope, and the exploration must still visit every race-case site
    // (a)-(h) of the paper's Figs. 6-9 — otherwise the mutation results
    // above prove nothing about the uninstrumented corners.
    for variant in SpecVariant::ALL {
        let report = run_model(&ModelConfig::smoke(variant));
        assert!(
            report.ok(),
            "{}: clean protocol violated at smoke scope: {}",
            variant.name(),
            report.render()
        );
        assert!(
            report.coverage.complete(),
            "{}: race cases {:?} never visited at smoke scope",
            variant.name(),
            report.coverage.unvisited()
        );
        assert!(report.counterexample.is_none());
    }
}

#[test]
fn counterexample_renders_script_and_event_path() {
    let cfg = ModelConfig {
        max_ops: 2,
        ..ModelConfig::smoke(SpecVariant::Priv)
    };
    let _guard = fault::Injected::new(fault::FaultKind::DropMaxR1stUpdate);
    let report = run_model(&cfg);
    let cex = report.counterexample.expect("counterexample");
    let rendered = cex.render();
    assert!(rendered.starts_with("minimal counterexample (priv, "));
    assert!(rendered.contains("event path ("));
    // The replayed path renders as trace events, one line per step.
    let path_lines = rendered
        .lines()
        .skip_while(|l| !l.starts_with("event path"))
        .skip(1)
        .count();
    assert_eq!(path_lines, cex.path.len());
    assert_eq!(cex.trace().len(), cex.path.len());
}

#[test]
fn scope_validation_rejects_out_of_range_combinations() {
    let bad = SpecScope {
        lines: 3,
        elems: 2,
        procs: 9,
    };
    let err = bad.validate().unwrap_err();
    assert_eq!(
        err,
        "unsupported scope 3x2x9 (lines x elems x procs); \
         valid: lines 1-2, elems lines-3, procs 1-4"
    );
    // elems below lines means an empty cache line — also rejected.
    let empty_line = SpecScope {
        lines: 2,
        elems: 1,
        procs: 2,
    };
    assert!(empty_line.validate().is_err());
    // The acceptance scope is, of course, valid.
    assert!(SpecScope {
        lines: 2,
        elems: 3,
        procs: 4
    }
    .validate()
    .is_ok());
}

/// Counts the access ops in a rendered counterexample's script block.
fn script_ops(rendered: &str) -> usize {
    parse_script(rendered).iter().map(Vec::len).sum()
}

/// Parses the `pN: R0 W1` lines back out of a rendered counterexample.
fn parse_script(rendered: &str) -> Script {
    rendered
        .lines()
        .skip(1)
        .take_while(|l| !l.starts_with("event path"))
        .map(|l| {
            let (_, ops) = l.trim().split_once(": ").expect("pN: ops");
            if ops == "(idle)" {
                return Vec::new();
            }
            ops.split_whitespace()
                .map(|op| {
                    let elem: u64 = op[1..].parse().expect("elem index");
                    match &op[..1] {
                        "R" => Op::Read(elem),
                        "W" => Op::Write(elem),
                        other => panic!("unexpected op {other}"),
                    }
                })
                .collect()
        })
        .collect()
}
