//! Regression gate: the parallel case runner must be invisible in the
//! output. A fuzz run at `jobs = 1` and `jobs = 4` over the same
//! `(cases, seed)` must produce byte-identical reports, statistics and
//! verdicts — CI additionally cross-checks the CLI output of
//! `specrt-check fuzz --jobs 2` against a `-j1` run.

use specrt_check::{enumerate_small_scope_jobs, fuzz_jobs, run_model, Coverage, ModelConfig};
use specrt_spec::{SpecScope, SpecVariant};

/// The CI smoke-run configuration: 500 cases from the documented seed.
const CASES: u64 = 500;
const SEED: u64 = 0x5eed;

#[test]
fn fuzz_500_cases_is_byte_identical_across_job_counts() {
    let serial = fuzz_jobs(CASES, SEED, 1);
    let parallel = fuzz_jobs(CASES, SEED, 4);

    assert_eq!(
        serial.render(),
        parallel.render(),
        "rendered report must not depend on the worker count"
    );
    assert_eq!(
        serial.stats.iter().collect::<Vec<_>>(),
        parallel.stats.iter().collect::<Vec<_>>(),
        "merged statistics must not depend on the worker count"
    );
    assert_eq!(serial.ok(), parallel.ok());
    assert_eq!(serial.cases, parallel.cases);
    assert_eq!(
        serial.visited_race_cases(),
        parallel.visited_race_cases(),
        "race-case coverage must not depend on the worker count"
    );
    // The smoke run itself must stay clean: the machine agrees with the
    // oracle on all 500 cases.
    assert!(serial.ok(), "fuzz failures: {:?}", serial.failures);
}

#[test]
fn profiling_does_not_perturb_fuzz_output() {
    // The hard invariant of the host profiling plane: turning it on must
    // leave every deterministic output byte-identical, at any job count.
    // (CI additionally cross-checks the CLI: `fuzz --profile` stdout is
    // `cmp`-ed against an unprofiled run.)
    let baseline = fuzz_jobs(64, SEED, 1);
    specrt_prof::set_enabled(true);
    let profiled_j1 = fuzz_jobs(64, SEED, 1);
    let profiled_j4 = fuzz_jobs(64, SEED, 4);
    specrt_prof::set_enabled(false);
    let report = specrt_prof::take_report();

    assert_eq!(
        baseline.render(),
        profiled_j1.render(),
        "profiling must not change the rendered report"
    );
    assert_eq!(
        baseline.render(),
        profiled_j4.render(),
        "profiling plus parallelism must not change the rendered report"
    );
    assert_eq!(
        baseline.stats.iter().collect::<Vec<_>>(),
        profiled_j1.stats.iter().collect::<Vec<_>>(),
        "profiling must not change the merged statistics"
    );
    // And the profiler did actually observe the run.
    assert!(!report.is_empty(), "profiled run must record spans");
    let totals = report.totals();
    let case = totals
        .iter()
        .find(|(n, _)| n == "fuzz.case")
        .map(|(_, s)| *s)
        .expect("fuzz.case span recorded");
    // At least our own 128 cases (64 at j=1 + 64 at j=4); sibling tests in
    // this binary may run concurrently while the profiler is enabled and
    // contribute more — the registry is global, so don't assert equality.
    assert!(case.count >= 128, "expected >= 128 fuzz.case spans");
}

#[test]
fn interleave_enumeration_is_identical_across_job_counts() {
    let mut cov1 = Coverage::new();
    let s1 = enumerate_small_scope_jobs(&mut cov1, 1);
    let mut cov4 = Coverage::new();
    let s4 = enumerate_small_scope_jobs(&mut cov4, 4);

    assert_eq!(s1.scripts, s4.scripts);
    assert_eq!(s1.states, s4.states);
    assert_eq!(s1.violations, s4.violations);
    assert_eq!(s1.conservative, s4.conservative);
    assert_eq!(cov1.counts, cov4.counts, "coverage counters must match");
    assert_eq!(s1.violations, 0, "no ordering may break the envelope");
}

#[test]
fn model_report_is_byte_identical_across_job_counts() {
    // Same contract as the fuzzer, one layer up: the bounded model
    // checker partitions scripts over the worker pool, and the merged
    // report (counters, dedup rate, coverage, counterexample) must not
    // depend on how many workers there were. CI additionally `cmp`s the
    // CLI output of `specrt-check model --jobs 2` against a `--jobs 1`
    // run. A 1x2x3 scope keeps this under a second while still crossing
    // the multiset-enumeration / per-script-partitioning seams.
    for variant in SpecVariant::ALL {
        let cfg = ModelConfig {
            scope: SpecScope {
                lines: 1,
                elems: 2,
                procs: 3,
            },
            max_ops: 4,
            ..ModelConfig::smoke(variant)
        };
        let serial = run_model(&ModelConfig { jobs: 1, ..cfg });
        let parallel = run_model(&ModelConfig { jobs: 4, ..cfg });
        assert_eq!(
            serial.render(),
            parallel.render(),
            "{}: rendered model report must not depend on the worker count",
            variant.name()
        );
        assert_eq!(serial.states, parallel.states);
        assert_eq!(serial.dedup_hits, parallel.dedup_hits);
        assert_eq!(serial.coverage.counts, parallel.coverage.counts);
        assert!(serial.ok(), "{}: clean run must pass", variant.name());
    }
}
