//! Property test: [`specrt_spec::ProtocolSpec::step`] is a *pure,
//! deterministic* function of `(state, message)`.
//!
//! Two angles, mirroring how `MemSystem::assert_invariants` is exercised:
//!
//! * **Shadow execution through the fuzz corpus.** Under
//!   `debug_assertions`, `MemSystem` keeps a `spec_shadow` directory image
//!   and double-evaluates every `ProtocolSpec` element transition it
//!   executes, `debug_assert!`-ing that the pure function reproduces the
//!   imperative machine's state and emissions at every message. Replaying
//!   the fuzz corpus here (this test binary is built with
//!   `debug_assertions` on) drives those hooks across every protocol
//!   variant, schedule kind and race case the templates cover — a mismatch
//!   panics the replay.
//! * **Direct double-evaluation over the explored state space.** We walk
//!   every state the bounded model checker can reach at the smoke scope
//!   and call `step` twice on cloned inputs, asserting identical results
//!   and untouched inputs. This catches interior mutability or
//!   hash-ordering nondeterminism that a single shadow evaluation could
//!   mask.

use std::collections::HashSet;

use specrt_check::{
    enumerate_scripts, run_case, spec_state_key, CaseSpec, ModelConfig, Op, TEMPLATE_SEEDS,
};
use specrt_spec::{ProtocolSpec, SpecMessage, SpecVariant};

/// Seeds beyond the hand-written templates, for generator variety.
const RANDOM_SEEDS: u64 = 24;

#[test]
fn fuzz_corpus_replays_clean_through_the_spec_shadow() {
    // Each case runs the full machine (all three hardware protocols plus
    // the software baseline); with debug_assertions on, every directory
    // and cache-tag transition inside is double-checked against the pure
    // spec. A spec/machine divergence panics here rather than failing an
    // assert_eq below — the point of the replay is reaching those hooks.
    for seed in 0..TEMPLATE_SEEDS + RANDOM_SEEDS {
        let case = CaseSpec::generate(seed);
        let result = run_case(&case);
        assert!(
            result.ok(),
            "seed {seed}: machine/oracle mismatch during shadow replay: {:?}",
            result.mismatches
        );
    }
    // The shadow hooks only exist in debug builds; this test binary is
    // compiled with debug_assertions on (cargo's default test profile), so
    // the replay above really did double-check every transition.
    #[cfg(not(debug_assertions))]
    panic!("this replay only exercises the spec shadow with debug_assertions on");
}

#[test]
fn step_is_pure_and_deterministic_over_the_reachable_state_space() {
    for variant in SpecVariant::ALL {
        let cfg = ModelConfig::smoke(variant);
        let spec = ProtocolSpec::new(variant, cfg.scope);
        // Walk the whole symmetry-reduced script universe the smoke model
        // run explores, double-evaluating every transition on the way.
        // Unlike the model checker proper we do NOT prune failed states —
        // step must be pure on those too.
        let mut checked = 0u64;
        for script in enumerate_scripts(variant, cfg.scope, cfg.max_ops) {
            let mut seen = HashSet::new();
            let mut frontier = vec![(spec.init(), vec![0usize; script.len()])];
            while let Some((s, pcs)) = frontier.pop() {
                let pcs16: Vec<u16> = pcs.iter().map(|&p| p as u16).collect();
                if !seen.insert(spec_state_key(&s, &pcs16)) {
                    continue;
                }
                for m in enabled(&s, &pcs, &script) {
                    let before = s.clone();
                    let (n1, e1) = spec.step(&s, &m);
                    let (n2, e2) = spec.step(&s, &m);
                    assert_eq!(s, before, "step must not mutate its input state");
                    assert_eq!(
                        (&n1, &e1),
                        (&n2, &e2),
                        "{}: step nondeterministic on {m:?}",
                        variant.name()
                    );
                    checked += 1;
                    let mut npcs = pcs.clone();
                    if let SpecMessage::Access { proc, .. } = m {
                        npcs[proc as usize] += 1;
                    }
                    frontier.push((n1, npcs));
                }
            }
        }
        assert!(
            checked > 1_000,
            "{}: expected a substantial state space, checked only {checked} transitions",
            variant.name()
        );
    }
}

/// Every message enabled in `s`: next script ops, pending deliveries, and
/// evictions of resident lines.
fn enabled(s: &specrt_spec::SpecState, pcs: &[usize], script: &[Vec<Op>]) -> Vec<SpecMessage> {
    let mut out = Vec::new();
    for (p, seq) in script.iter().enumerate() {
        if let Some(op) = seq.get(pcs[p]) {
            let (write, elem) = match *op {
                Op::Read(e) => (false, e as u16),
                Op::Write(e) => (true, e as u16),
            };
            out.push(SpecMessage::Access {
                proc: p as u16,
                write,
                elem,
            });
        }
    }
    for i in 0..s.inflight.len() {
        out.push(SpecMessage::Deliver { index: i });
    }
    for (i, c) in s.copies.iter().enumerate() {
        if c.is_some() {
            // Smoke scope is 1 line x 2 procs: copies[p] is proc p, line 0.
            out.push(SpecMessage::Evict {
                proc: i as u16,
                line: 0,
            });
        }
    }
    out
}
