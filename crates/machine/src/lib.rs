#![warn(missing_docs)]

//! # specrt-machine
//!
//! The simulated CC-NUMA multiprocessor: in-order processors interpreting
//! IR loop bodies, iteration schedulers, synchronization, and the scenario
//! driver that reproduces the paper's four execution modes.
//!
//! * [`config`] — machine-level constants (write buffer depth, barrier and
//!   scheduling overheads, abort latency);
//! * [`sched`] — iteration schedulers: static chunking, block-cyclic, and
//!   lock-based dynamic self-scheduling (§5.2's workloads need all three);
//! * [`loopspec`] — [`loopspec::LoopSpec`], the full description
//!   of one speculatively-parallelized loop: body, arrays, test plan,
//!   scheduling, liveness;
//! * [`exec`] — the event-driven executor: runs one parallel (or serial)
//!   loop on the machine, interleaving processors in virtual time,
//!   modelling write buffers, barrier waits, and speculative aborts;
//! * [`scenario`] — the paper's four scenarios: `Serial`, `Ideal`
//!   (doall without tests), `SW` (software LRPD with instrumented marking,
//!   merging and analysis phases) and `HW` (the proposed hardware scheme),
//!   including backup/restore and serial re-execution on failure;
//! * [`pool`] — thread-local [`specrt_proto::MemSystem`] reuse: scenario
//!   runs lease a reset machine instead of rebuilding one per case, the
//!   `machine.setup` cost the host profile flagged.

pub mod config;
pub mod exec;
pub mod loopspec;
pub mod pool;
pub mod scenario;
pub mod sched;

pub use config::{CheckpointConfig, MachineConfig, RecoveryPolicy};
pub use exec::{ExecEnd, ExecSummary, Executor, BARRIER_ARRAY};
pub use loopspec::{ArrayDecl, LoopSpec, ScheduleKind};
pub use pool::PooledMem;
pub use scenario::{run_scenario, run_scenario_configured, RunResult, Scenario, SwVariant};
pub use sched::{
    BlockCyclic, DynamicSelf, Replicated, SchedDecision, Scheduler, StaticChunked, Windowed,
};
