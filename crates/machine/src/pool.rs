//! Thread-local [`MemSystem`] reuse pool.
//!
//! The host profile (DESIGN.md §13) charges a visible slice of every case to
//! `machine.setup`: each scenario run used to construct a fresh [`MemSystem`]
//! — caches, directories, network, speculative stores — only to throw it
//! away a few thousand simulated cycles later. Under a long-running server
//! (`specrt-serve`) or a fuzz sweep, consecutive requests overwhelmingly
//! share one [`MemSystemConfig`], so the pool keeps recently-dropped systems
//! per thread and hands them back after an in-place
//! [`MemSystem::reset_for_reuse`], which keeps the big containers' allocated
//! capacity.
//!
//! Correctness: a reset system must be observationally identical to a fresh
//! one — the serving layer's byte-identity guarantee (cold = warm = any
//! `--jobs`) rides on it, and `tests/pool.rs` pins it by running the same
//! loop back-to-back on one pooled instance. The pool is thread-local, so
//! parallel workers (`crates/par`) never contend and per-thread behaviour
//! stays deterministic.
//!
//! Scenario runners lease through [`lease`]; the guard returns the system on
//! drop. [`counters`] exposes global build/reuse totals for the serve
//! metrics plane (telemetry only — never part of a deterministic payload).

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

use specrt_proto::{MemSystem, MemSystemConfig};

/// Systems kept per thread. Scenario runners hold at most two machines at
/// once (a speculative run plus its serial re-execution uses them
/// sequentially), so a small pool already captures the reuse; anything
/// larger just holds memory hostage on wide sweeps with varied configs.
const MAX_POOLED: usize = 4;

thread_local! {
    static POOL: RefCell<Vec<(MemSystemConfig, MemSystem)>> =
        const { RefCell::new(Vec::new()) };
}

static BUILDS: AtomicU64 = AtomicU64::new(0);
static REUSES: AtomicU64 = AtomicU64::new(0);

/// A leased [`MemSystem`], returned to the thread's pool on drop.
///
/// Dereferences to [`MemSystem`]; scenario code uses it exactly like an
/// owned system.
pub struct PooledMem {
    cfg: MemSystemConfig,
    ms: Option<MemSystem>,
}

/// Leases a system for `cfg`: a pooled instance with the identical
/// configuration (reset in place) when one is available on this thread, a
/// freshly constructed one otherwise.
pub fn lease(cfg: MemSystemConfig) -> PooledMem {
    let pooled = POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.iter()
            .position(|(c, _)| *c == cfg)
            .map(|i| p.swap_remove(i).1)
    });
    let ms = match pooled {
        Some(mut ms) => {
            let _prof = specrt_prof::scope("machine.reset");
            ms.reset_for_reuse();
            REUSES.fetch_add(1, Ordering::Relaxed);
            ms
        }
        None => {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            MemSystem::new(cfg)
        }
    };
    PooledMem { cfg, ms: Some(ms) }
}

/// Global `(builds, reuses)` totals across all threads since process start.
/// Monotonic telemetry for the serve metrics plane; relaxed counters, never
/// part of a deterministic result payload.
pub fn counters() -> (u64, u64) {
    (
        BUILDS.load(Ordering::Relaxed),
        REUSES.load(Ordering::Relaxed),
    )
}

impl Deref for PooledMem {
    type Target = MemSystem;

    fn deref(&self) -> &MemSystem {
        self.ms.as_ref().expect("leased system present until drop")
    }
}

impl DerefMut for PooledMem {
    fn deref_mut(&mut self) -> &mut MemSystem {
        self.ms.as_mut().expect("leased system present until drop")
    }
}

impl Drop for PooledMem {
    fn drop(&mut self) {
        let ms = self.ms.take().expect("dropped once");
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_POOLED {
                p.push((self.cfg, ms));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_reuses_matching_config_on_this_thread() {
        let cfg = MemSystemConfig::default();
        let (b0, r0) = counters();
        drop(lease(cfg)); // seed the pool
        let _m = lease(cfg); // must come back from the pool
        let (b1, r1) = counters();
        // Other tests on other threads may build concurrently, but *this*
        // thread's second lease can only have been a reuse.
        assert!(r1 > r0, "second lease should reuse ({r0} -> {r1})");
        assert!(b1 > b0);
    }

    #[test]
    fn different_config_builds_fresh() {
        let a = MemSystemConfig::default();
        let mut b = a;
        b.procs = a.procs + 1;
        drop(lease(a));
        let leased = lease(b);
        assert_eq!(leased.procs(), b.procs);
    }
}
