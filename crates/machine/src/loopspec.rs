//! Loop specifications: everything the runtime needs to know about one
//! candidate loop.

use specrt_ir::{ArrayId, Program, Scalar};
use specrt_mem::ElemSize;
use specrt_spec::{IterationNumbering, TestPlan};

/// How iterations are scheduled onto processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Static contiguous chunks (one per processor).
    Static,
    /// Block-cyclic with the given block size.
    BlockCyclic {
        /// Iterations per block.
        block: u64,
    },
    /// Lock-based dynamic self-scheduling grabbing `block` iterations at a
    /// time.
    Dynamic {
        /// Iterations grabbed per lock acquisition.
        block: u64,
    },
}

/// One array accessed by the loop.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Logical id referenced by the loop body.
    pub id: ArrayId,
    /// Number of elements.
    pub len: u64,
    /// Element size (4- or 8-byte, §5.2).
    pub elem: ElemSize,
    /// Initial contents (padded with zeros if shorter than `len`).
    pub init: Vec<Scalar>,
    /// The element region the backup phase must save, as `(offset, len)`
    /// (compiler-identified modified region, §2.2.1: "it is also possible
    /// to reduce the amount of backup requirements"). `None` saves the
    /// whole array.
    pub backup_region: Option<(u64, u64)>,
    /// Sparse backup (§2.2.1: "if the pattern of access is sparse, it is
    /// better to save individual elements … just before they are
    /// modified"): no up-front copy; on failure only the elements actually
    /// written are restored.
    pub sparse_backup: bool,
}

impl ArrayDecl {
    /// A zero-initialized array.
    pub fn zeroed(id: ArrayId, len: u64, elem: ElemSize) -> Self {
        ArrayDecl {
            id,
            len,
            elem,
            init: Vec::new(),
            backup_region: None,
            sparse_backup: false,
        }
    }

    /// An array with explicit initial contents (its length).
    pub fn with_init(id: ArrayId, elem: ElemSize, init: Vec<Scalar>) -> Self {
        ArrayDecl {
            id,
            len: init.len() as u64,
            elem,
            init,
            backup_region: None,
            sparse_backup: false,
        }
    }

    /// Marks the array for sparse (save-on-first-write) backup.
    pub fn with_sparse_backup(mut self) -> Self {
        self.sparse_backup = true;
        self
    }

    /// Limits the backup phase to the `len` elements starting at `offset`
    /// (the compiler-identified modified region).
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the array.
    pub fn with_backup_region(mut self, offset: u64, len: u64) -> Self {
        assert!(offset + len <= self.len, "backup region out of bounds");
        self.backup_region = Some((offset, len));
        self
    }

    /// The `(offset, len)` region the backup phase saves.
    pub fn backup_elems(&self) -> (u64, u64) {
        self.backup_region.unwrap_or((0, self.len))
    }

    /// Initial contents padded to `len`.
    pub fn padded_init(&self) -> Vec<Scalar> {
        let mut v = self.init.clone();
        v.resize(self.len as usize, Scalar::ZERO);
        v
    }
}

/// A candidate loop for speculative run-time parallelization.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Human-readable name (e.g. `ocean/ftrvmt.do109`).
    pub name: String,
    /// The body of one iteration.
    pub body: Program,
    /// Iteration count.
    pub iters: u64,
    /// All arrays the loop touches.
    pub arrays: Vec<ArrayDecl>,
    /// Which arrays are under which run-time test.
    pub plan: TestPlan,
    /// Effective iteration numbering for the tests (iteration-wise,
    /// chunked, or processor-wise).
    pub numbering: IterationNumbering,
    /// Iteration scheduling.
    pub schedule: ScheduleKind,
    /// Privatized arrays that are live after the loop (need copy-out).
    pub live_after: Vec<ArrayId>,
    /// §3.3 stamp-overflow resynchronization: "if the loop has so many
    /// iterations that the time stamps would overflow, we synchronize all
    /// processors periodically after a fixed number of iterations … at
    /// synchronization points, the effective iteration number … is reset to
    /// zero." `Some(w)` runs the speculative loop in windows of `w`
    /// iterations separated by barriers, resetting the privatization stamps
    /// at each boundary. `None` runs unwindowed.
    pub stamp_window: Option<u64>,
}

impl LoopSpec {
    /// Declaration of array `id`.
    ///
    /// # Panics
    ///
    /// Panics if the loop does not declare `id`.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        self.arrays
            .iter()
            .find(|a| a.id == id)
            .unwrap_or_else(|| panic!("loop {} does not declare {id}", self.name))
    }

    /// Arrays the body stores to (by static inspection of the IR). These
    /// are the arrays that need backup before speculative execution —
    /// privatized ones excepted, since their writes go to private copies.
    pub fn written_arrays(&self) -> Vec<ArrayId> {
        self.arrays
            .iter()
            .map(|a| a.id)
            .filter(|&id| self.body.writes_array(id))
            .collect()
    }

    /// Arrays needing backup: written and not privatized.
    pub fn backup_arrays(&self) -> Vec<ArrayId> {
        self.written_arrays()
            .into_iter()
            .filter(|&id| !self.plan.kind_of(id).is_privatized())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_ir::{Operand, ProgramBuilder};
    use specrt_spec::ProtocolKind;

    fn spec() -> LoopSpec {
        let a = ArrayId(0);
        let b = ArrayId(1);
        let mut pb = ProgramBuilder::new();
        let v = pb.load(b, Operand::Iter);
        pb.store(a, Operand::Iter, Operand::Reg(v));
        let mut plan = TestPlan::new();
        plan.set(a, ProtocolKind::NonPriv);
        LoopSpec {
            name: "test".into(),
            body: pb.build().unwrap(),
            iters: 8,
            arrays: vec![
                ArrayDecl::zeroed(a, 8, ElemSize::W8),
                ArrayDecl::with_init(b, ElemSize::W8, vec![Scalar::Int(1); 8]),
            ],
            plan,
            numbering: IterationNumbering::iteration_wise(),
            schedule: ScheduleKind::Static,
            live_after: vec![],
            stamp_window: None,
        }
    }

    #[test]
    fn array_lookup_and_padding() {
        let s = spec();
        assert_eq!(s.array(ArrayId(1)).len, 8);
        let mut short = ArrayDecl::zeroed(ArrayId(2), 4, ElemSize::W4);
        short.init = vec![Scalar::Int(9)];
        let padded = short.padded_init();
        assert_eq!(padded.len(), 4);
        assert_eq!(padded[0], Scalar::Int(9));
        assert_eq!(padded[3], Scalar::ZERO);
    }

    #[test]
    fn written_and_backup_arrays() {
        let mut s = spec();
        assert_eq!(s.written_arrays(), vec![ArrayId(0)]);
        assert_eq!(s.backup_arrays(), vec![ArrayId(0)]);
        // Privatizing the written array removes it from backup.
        s.plan.set(
            ArrayId(0),
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
        );
        assert!(s.backup_arrays().is_empty());
    }

    #[test]
    #[should_panic(expected = "does not declare")]
    fn missing_array_panics() {
        spec().array(ArrayId(9));
    }
}
