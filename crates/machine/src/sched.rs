//! Iteration schedulers.
//!
//! §5.2 uses all of: static contiguous chunks (required by the
//! processor-wise software test), dynamic self-scheduling (P3m's imbalanced
//! iterations), and dynamically-scheduled small blocks (Track under the
//! hardware scheme). The non-privatization hardware test is
//! "intrinsically processor-wise … there is freedom of iteration assignment
//! and scheduling; the only constraint is that a processor must execute its
//! iterations in increasing order" — which every scheduler here guarantees.

use specrt_engine::{Cycles, Resource};
use specrt_mem::ProcId;

/// A scheduler's answer to "what should this processor run next?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedDecision {
    /// Run global iteration `iter`; the dispatch cost `overhead` is busy
    /// time, `wait` is synchronization time (lock queueing).
    Run {
        /// Global 0-based iteration to execute.
        iter: u64,
        /// Busy cycles spent dispatching.
        overhead: Cycles,
        /// Sync cycles spent waiting (e.g. for the scheduling lock).
        wait: Cycles,
    },
    /// No iterations left for this processor.
    Done,
}

/// Hands out iterations to processors. Implementations must give each
/// processor a nondecreasing iteration sequence.
pub trait Scheduler {
    /// Next decision for `proc` asking at time `now`.
    fn next(&mut self, proc: ProcId, now: Cycles) -> SchedDecision;

    /// Total iterations this scheduler will hand out.
    fn total(&self) -> u64;

    /// Stable policy name, used to label scheduler events in traces.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Static contiguous chunking: processor `p` runs iterations
/// `[p*chunk, (p+1)*chunk)`. Required by processor-wise tests.
#[derive(Debug, Clone)]
pub struct StaticChunked {
    total: u64,
    procs: u32,
    chunk: u64,
    cursor: Vec<u64>,
    overhead: u64,
}

impl StaticChunked {
    /// Creates a static schedule of `total` iterations over `procs`
    /// processors with per-dispatch `overhead` cycles.
    pub fn new(total: u64, procs: u32, overhead: u64) -> Self {
        let chunk = total.div_ceil(procs as u64).max(1);
        StaticChunked {
            total,
            procs,
            chunk,
            cursor: vec![0; procs as usize],
            overhead,
        }
    }

    /// The chunk size (iterations per processor).
    pub fn chunk(&self) -> u64 {
        self.chunk
    }
}

impl Scheduler for StaticChunked {
    fn next(&mut self, proc: ProcId, _now: Cycles) -> SchedDecision {
        assert!(proc.0 < self.procs);
        let served = &mut self.cursor[proc.0 as usize];
        let iter = proc.0 as u64 * self.chunk + *served;
        if *served >= self.chunk || iter >= self.total {
            return SchedDecision::Done;
        }
        *served += 1;
        SchedDecision::Run {
            iter,
            overhead: Cycles(self.overhead),
            wait: Cycles::ZERO,
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn name(&self) -> &'static str {
        "static-chunked"
    }
}

/// Block-cyclic: processor `p` runs blocks `p, p+P, p+2P, …` of `block`
/// contiguous iterations each (§4.1's chunking optimization).
#[derive(Debug, Clone)]
pub struct BlockCyclic {
    total: u64,
    procs: u32,
    block: u64,
    // per-proc: (current block index among its own, offset within block)
    state: Vec<(u64, u64)>,
    overhead: u64,
}

impl BlockCyclic {
    /// Creates a block-cyclic schedule.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn new(total: u64, procs: u32, block: u64, overhead: u64) -> Self {
        assert!(block > 0, "block size must be positive");
        BlockCyclic {
            total,
            procs,
            block,
            state: vec![(0, 0); procs as usize],
            overhead,
        }
    }
}

impl Scheduler for BlockCyclic {
    fn next(&mut self, proc: ProcId, _now: Cycles) -> SchedDecision {
        let (blk, off) = &mut self.state[proc.0 as usize];
        loop {
            let global_block = *blk * self.procs as u64 + proc.0 as u64;
            let iter = global_block * self.block + *off;
            if iter >= self.total {
                return SchedDecision::Done;
            }
            if *off >= self.block {
                *blk += 1;
                *off = 0;
                continue;
            }
            *off += 1;
            return SchedDecision::Run {
                iter,
                overhead: Cycles(self.overhead),
                wait: Cycles::ZERO,
            };
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn name(&self) -> &'static str {
        "block-cyclic"
    }
}

/// Dynamic self-scheduling: a central iteration counter protected by a
/// lock; processors grab `block` iterations at a time. Lock contention is
/// modelled with a FIFO [`Resource`] and shows up as sync time.
#[derive(Debug)]
pub struct DynamicSelf {
    total: u64,
    next: u64,
    block: u64,
    lock: Resource,
    lock_hold: u64,
    // per-proc privately held iterations (already grabbed).
    local: Vec<(u64, u64)>, // (next, end)
    overhead: u64,
}

impl DynamicSelf {
    /// Creates a dynamic self-scheduler grabbing `block` iterations per
    /// lock acquisition, holding the lock `lock_hold` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn new(total: u64, procs: u32, block: u64, lock_hold: u64, overhead: u64) -> Self {
        assert!(block > 0, "block size must be positive");
        DynamicSelf {
            total,
            next: 0,
            block,
            lock: Resource::new(),
            lock_hold,
            local: vec![(0, 0); procs as usize],
            overhead,
        }
    }
}

impl Scheduler for DynamicSelf {
    fn next(&mut self, proc: ProcId, now: Cycles) -> SchedDecision {
        let slot = &mut self.local[proc.0 as usize];
        if slot.0 < slot.1 {
            let iter = slot.0;
            slot.0 += 1;
            return SchedDecision::Run {
                iter,
                overhead: Cycles(self.overhead),
                wait: Cycles::ZERO,
            };
        }
        if self.next >= self.total {
            return SchedDecision::Done;
        }
        // Grab a block under the lock.
        let done_at = self.lock.acquire(now, Cycles(self.lock_hold));
        let wait = done_at
            .saturating_sub(now)
            .saturating_sub(Cycles(self.lock_hold));
        let start = self.next;
        let end = (start + self.block).min(self.total);
        self.next = end;
        self.local[proc.0 as usize] = (start + 1, end);
        SchedDecision::Run {
            iter: start,
            overhead: Cycles(self.lock_hold + self.overhead),
            wait,
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn name(&self) -> &'static str {
        "dynamic-self"
    }
}

/// Every processor runs *every* iteration (used for the software scheme's
/// shadow zero-out, where each processor clears its own full-size private
/// shadows).
#[derive(Debug, Clone)]
pub struct Replicated {
    total: u64,
    cursor: Vec<u64>,
    overhead: u64,
}

impl Replicated {
    /// Creates a replicated schedule of `total` iterations for `procs`.
    pub fn new(total: u64, procs: u32, overhead: u64) -> Self {
        Replicated {
            total,
            cursor: vec![0; procs as usize],
            overhead,
        }
    }
}

impl Scheduler for Replicated {
    fn next(&mut self, proc: ProcId, _now: Cycles) -> SchedDecision {
        let c = &mut self.cursor[proc.0 as usize];
        if *c >= self.total {
            return SchedDecision::Done;
        }
        let iter = *c;
        *c += 1;
        SchedDecision::Run {
            iter,
            overhead: Cycles(self.overhead),
            wait: Cycles::ZERO,
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn name(&self) -> &'static str {
        "replicated"
    }
}

/// All iterations on processor 0, everyone else immediately done (serial
/// phases such as the software scheme's final flag reduction).
#[derive(Debug, Clone)]
pub struct SingleProc {
    total: u64,
    cursor: u64,
    overhead: u64,
}

impl SingleProc {
    /// Creates a processor-0-only schedule of `total` iterations.
    pub fn new(total: u64, overhead: u64) -> Self {
        SingleProc {
            total,
            cursor: 0,
            overhead,
        }
    }
}

impl Scheduler for SingleProc {
    fn next(&mut self, proc: ProcId, _now: Cycles) -> SchedDecision {
        if proc.0 != 0 || self.cursor >= self.total {
            return SchedDecision::Done;
        }
        let iter = self.cursor;
        self.cursor += 1;
        SchedDecision::Run {
            iter,
            overhead: Cycles(self.overhead),
            wait: Cycles::ZERO,
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn name(&self) -> &'static str {
        "single-proc"
    }
}

/// Offsets an inner scheduler's iteration numbers by a base: used to run
/// one §3.3 stamp-resynchronization window `[base, base + len)` with a
/// scheduler built for `0..len`.
pub struct Windowed {
    inner: Box<dyn Scheduler>,
    base: u64,
}

impl std::fmt::Debug for Windowed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Windowed")
            .field("base", &self.base)
            .field("total", &self.inner.total())
            .finish()
    }
}

impl Windowed {
    /// Wraps `inner`, shifting every handed-out iteration by `base`.
    pub fn new(inner: Box<dyn Scheduler>, base: u64) -> Self {
        Windowed { inner, base }
    }
}

impl Scheduler for Windowed {
    fn next(&mut self, proc: ProcId, now: Cycles) -> SchedDecision {
        match self.inner.next(proc, now) {
            SchedDecision::Run {
                iter,
                overhead,
                wait,
            } => SchedDecision::Run {
                iter: iter + self.base,
                overhead,
                wait,
            },
            SchedDecision::Done => SchedDecision::Done,
        }
    }

    fn total(&self) -> u64 {
        self.inner.total()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut dyn Scheduler, proc: u32) -> Vec<u64> {
        let mut v = Vec::new();
        while let SchedDecision::Run { iter, .. } = s.next(ProcId(proc), Cycles(0)) {
            v.push(iter);
        }
        v
    }

    #[test]
    fn static_chunked_partitions_contiguously() {
        let mut s = StaticChunked::new(10, 3, 2);
        assert_eq!(s.chunk(), 4);
        assert_eq!(drain(&mut s, 0), vec![0, 1, 2, 3]);
        assert_eq!(drain(&mut s, 1), vec![4, 5, 6, 7]);
        assert_eq!(drain(&mut s, 2), vec![8, 9]);
    }

    #[test]
    fn static_chunked_covers_all_iterations_exactly_once() {
        let mut s = StaticChunked::new(100, 7, 2);
        let mut all = Vec::new();
        for p in 0..7 {
            all.extend(drain(&mut s, p));
        }
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn block_cyclic_interleaves_blocks() {
        let mut s = BlockCyclic::new(12, 2, 2, 2);
        assert_eq!(drain(&mut s, 0), vec![0, 1, 4, 5, 8, 9]);
        assert_eq!(drain(&mut s, 1), vec![2, 3, 6, 7, 10, 11]);
    }

    #[test]
    fn block_cyclic_handles_ragged_tail() {
        let mut s = BlockCyclic::new(5, 2, 2, 2);
        let mut all = Vec::new();
        for p in 0..2 {
            all.extend(drain(&mut s, p));
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dynamic_self_covers_all_iterations() {
        let mut s = DynamicSelf::new(20, 4, 3, 10, 2);
        let mut all = Vec::new();
        // Interleave requests across processors.
        let mut done = [false; 4];
        while !done.iter().all(|&d| d) {
            for (p, d) in done.iter_mut().enumerate() {
                if *d {
                    continue;
                }
                match s.next(ProcId(p as u32), Cycles(0)) {
                    SchedDecision::Run { iter, .. } => all.push(iter),
                    SchedDecision::Done => *d = true,
                }
            }
        }
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_self_iterations_nondecreasing_per_proc() {
        let mut s = DynamicSelf::new(50, 2, 5, 10, 2);
        let mut last = [0u64; 2];
        for round in 0..50 {
            for p in 0..2u32 {
                if let SchedDecision::Run { iter, .. } = s.next(ProcId(p), Cycles(round)) {
                    assert!(iter >= last[p as usize]);
                    last[p as usize] = iter;
                }
            }
        }
    }

    #[test]
    fn dynamic_lock_contention_shows_as_wait() {
        let mut s = DynamicSelf::new(100, 2, 1, 10, 2);
        // Both processors grab at t=0; the second waits for the lock.
        let a = s.next(ProcId(0), Cycles(0));
        let b = s.next(ProcId(1), Cycles(0));
        let wait_of = |d: SchedDecision| match d {
            SchedDecision::Run { wait, .. } => wait,
            SchedDecision::Done => panic!("expected Run"),
        };
        assert_eq!(wait_of(a), Cycles::ZERO);
        assert_eq!(wait_of(b), Cycles(10));
    }

    #[test]
    fn single_proc_serves_only_processor_zero() {
        let mut s = SingleProc::new(3, 1);
        assert_eq!(s.next(ProcId(1), Cycles(0)), SchedDecision::Done);
        assert_eq!(drain(&mut s, 0), vec![0, 1, 2]);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn windowed_offsets_iterations() {
        let inner = Box::new(StaticChunked::new(4, 2, 1));
        let mut w = Windowed::new(inner, 100);
        assert_eq!(drain(&mut w, 0), vec![100, 101]);
        assert_eq!(drain(&mut w, 1), vec![102, 103]);
        assert_eq!(w.total(), 4);
    }

    #[test]
    fn replicated_gives_everyone_everything() {
        let mut s = Replicated::new(3, 2, 1);
        assert_eq!(drain(&mut s, 0), vec![0, 1, 2]);
        assert_eq!(drain(&mut s, 1), vec![0, 1, 2]);
    }

    #[test]
    fn schedulers_report_total() {
        assert_eq!(StaticChunked::new(7, 2, 2).total(), 7);
        assert_eq!(BlockCyclic::new(7, 2, 2, 2).total(), 7);
        assert_eq!(DynamicSelf::new(7, 2, 2, 10, 2).total(), 7);
        assert_eq!(Replicated::new(7, 2, 2).total(), 7);
    }
}
