//! Machine-level configuration.

use specrt_proto::{MemSystemConfig, NetConfig};

/// Checkpointing cadence for [`RecoveryPolicy::CheckpointRestart`].
///
/// Speculative state quiesces at stamp-window barriers (all messages
/// drained, failure checked, qualified tags reset), so that is where a
/// checkpoint is cheap: the functional image, the accumulated last-writer
/// map and the iteration base fully describe a resumable prefix. The
/// machine snapshots at every window boundary, and windows are clamped to
/// at most `every_iters` iterations so a checkpoint exists at least that
/// often.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Maximum iterations between checkpoints (≥ 1; also an upper bound on
    /// the stamp-window length while this policy is active).
    pub every_iters: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig { every_iters: 16 }
    }
}

/// What the machine does when the hardware flags a speculation failure.
///
/// The paper's policy (§3) is [`RecoveryPolicy::SerialReexec`]: abort the
/// doall, restore the backups, re-execute the whole loop serially.
/// [`RecoveryPolicy::RetrySpeculative`] generalizes it for *transient*
/// failures (a lost message escalated by the watchdog): restore the
/// backups, then re-run the loop speculatively up to `max_attempts` times
/// before falling back to the serial safety net. Deterministic dependence
/// violations fail every retry and land in the same serial fallback, so
/// the final memory image is identical under either policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Abort → restore → serial re-execution (the paper's safety net).
    SerialReexec,
    /// Abort → restore → speculative re-run, at most `max_attempts` times,
    /// then the serial safety net.
    RetrySpeculative {
        /// Speculative attempts beyond the first run (≥ 1 to be
        /// distinguishable from [`RecoveryPolicy::SerialReexec`]).
        max_attempts: u32,
    },
    /// Abort → roll back to the last window checkpoint → re-run only the
    /// lost iterations speculatively on the surviving processors (a node
    /// flagged `NodeUnreachable` is fenced out and its remaining chunk
    /// redistributed); the serial safety net covers a failure with no
    /// preceding checkpoint or a rerun that fails again.
    CheckpointRestart {
        /// Checkpointing cadence.
        checkpoint: CheckpointConfig,
    },
}

impl RecoveryPolicy {
    /// Speculative re-runs this policy allows after the initial attempt.
    /// Checkpoint restart does not re-run the whole loop, so it has no
    /// whole-loop retry budget.
    pub fn retries(&self) -> u32 {
        match self {
            RecoveryPolicy::SerialReexec | RecoveryPolicy::CheckpointRestart { .. } => 0,
            RecoveryPolicy::RetrySpeculative { max_attempts } => *max_attempts,
        }
    }
}

/// Constants governing processor and synchronization behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Memory-system configuration (processors, caches, latencies).
    pub mem: MemSystemConfig,
    /// Write-buffer depth: "processors do not stall on write misses" (§5.1)
    /// until this many stores are outstanding.
    pub write_buffer: usize,
    /// Fixed cost of a barrier episode beyond the latest arrival
    /// (lock + flag traffic).
    pub barrier_overhead: u64,
    /// Per-iteration dispatch cost under static/block-cyclic scheduling
    /// (loop increment + bounds check).
    pub sched_static_overhead: u64,
    /// Cycles the dynamic scheduler's central lock is held per grab.
    pub sched_lock_hold: u64,
    /// Cycles from a FAIL detection at a directory to every processor
    /// having stopped (abort broadcast).
    pub abort_latency: u64,
    /// Cost of the hardware's qualified tag reset at an iteration start.
    pub iter_reset_cost: u64,
    /// Detailed loop-end barrier: arrivals perform DASH fetch&op on a
    /// shared counter (serializing at its home directory) and waiters wake
    /// by re-reading the released sense flag, so barrier cost grows with
    /// contention instead of being the constant `barrier_overhead`.
    pub detailed_barrier: bool,
    /// Ring-buffer capacity for structured trace events; `0` disables
    /// tracing entirely (the default — no overhead on the access path).
    pub trace_capacity: usize,
    /// Also emit per-message network events into the trace (requires
    /// `trace_capacity > 0`). Off by default: the network stream is dense
    /// and would evict the transaction-level events golden tests rely on.
    pub trace_net: bool,
    /// Failure-recovery policy (the paper's serial re-execution by
    /// default).
    pub recovery: RecoveryPolicy,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mem: MemSystemConfig::default(),
            write_buffer: 16,
            barrier_overhead: 120,
            sched_static_overhead: 2,
            sched_lock_hold: 30,
            abort_latency: 200,
            iter_reset_cost: 1,
            detailed_barrier: false,
            trace_capacity: 0,
            trace_net: false,
            recovery: RecoveryPolicy::SerialReexec,
        }
    }
}

impl MachineConfig {
    /// Convenience: a default machine with `procs` processors.
    pub fn with_procs(procs: u32) -> Self {
        let mut c = MachineConfig::default();
        c.mem.procs = procs;
        c
    }

    /// Number of processors.
    pub fn procs(&self) -> u32 {
        self.mem.procs
    }

    /// Same machine with a different interconnect.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.mem.net = net;
        self
    }

    /// Same machine with a different failure-recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_procs_sets_processor_count() {
        let c = MachineConfig::with_procs(8);
        assert_eq!(c.procs(), 8);
        assert_eq!(c.write_buffer, 16);
    }

    #[test]
    fn default_is_sixteen_processors() {
        assert_eq!(MachineConfig::default().procs(), 16);
    }

    #[test]
    fn with_net_swaps_the_interconnect() {
        let c = MachineConfig::with_procs(16).with_net(NetConfig::mesh(16));
        assert!(c.mem.net.is_contended());
        assert!(!MachineConfig::default().mem.net.is_contended());
    }

    #[test]
    fn recovery_policy_retry_budget() {
        assert_eq!(RecoveryPolicy::SerialReexec.retries(), 0);
        assert_eq!(
            RecoveryPolicy::RetrySpeculative { max_attempts: 3 }.retries(),
            3
        );
        assert_eq!(
            RecoveryPolicy::CheckpointRestart {
                checkpoint: CheckpointConfig::default()
            }
            .retries(),
            0
        );
        assert_eq!(
            MachineConfig::default().recovery,
            RecoveryPolicy::SerialReexec
        );
    }
}
