//! The event-driven multiprocessor loop executor.
//!
//! Processors are interleaved in virtual time through a global event queue:
//! each dispatch performs at most one shared-state action (a memory access
//! or an iteration fetch) at its exact global time, then runs the purely
//! local instructions that follow (register ALU work) eagerly, and
//! re-enqueues itself for the next shared action. This keeps the memory
//! system's contention and protocol state updated in strict time order
//! while letting register-only stretches run at full interpreter speed.
//!
//! Modelled per processor: in-order execution (1 instruction/cycle), loads
//! that stall until data returns, a finite write buffer (stores retire
//! asynchronously, §5.1: "processors do not stall on write misses"), sync
//! time at the scheduler lock and the loop-end barrier, and — for
//! speculative runs — the abort broadcast after a FAIL.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use specrt_engine::{Cycles, EventQueue, TimeBreakdown};
use specrt_ir::{ArrayId, Instr, Operand, Program, Reg, Scalar};
use specrt_mem::ProcId;
use specrt_proto::{private_copy_id, MemSystem, TraceEvent};
use specrt_spec::FailReason;

use crate::config::MachineConfig;
use crate::sched::{SchedDecision, Scheduler};

/// Well-known array holding the loop-end barrier's counter (element 0) and
/// sense flag (element 1), used when
/// [`MachineConfig::detailed_barrier`] is set. Scenario setup allocates it.
pub const BARRIER_ARRAY: ArrayId = ArrayId(0x0200_0000);

/// How a loop execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecEnd {
    /// All iterations ran and the final barrier released.
    Completed,
    /// The speculation failed (protocol FAIL or execution exception) and
    /// the machine aborted.
    Failed {
        /// Why.
        reason: FailReason,
        /// When the failure was detected.
        at: Cycles,
    },
}

/// Result of one executor run.
#[derive(Debug, Clone)]
pub struct ExecSummary {
    /// Completion or failure.
    pub end: ExecEnd,
    /// Time at which every processor had stopped (barrier release or abort
    /// completion).
    pub finish_time: Cycles,
    /// Per-processor Busy/Sync/Mem decomposition.
    pub per_proc: Vec<TimeBreakdown>,
    /// Iterations that ran to completion.
    pub iterations: u64,
    /// For arrays registered for copy-out tracking: last write per element
    /// as `(logical array, element) → (iteration+1, value)`. Ordered so
    /// that every consumer (window merge, copy-out, written counts)
    /// iterates deterministically — host hash state cannot leak into
    /// verdicts, stats, or traces at any `--jobs`.
    pub winners: BTreeMap<(ArrayId, u64), (u64, Scalar)>,
}

#[derive(Debug, Clone, Copy)]
struct MemOp {
    write: bool,
    arr: ArrayId,
    idx: u64,
    dst: Option<Reg>,
    value: Option<Scalar>,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Fetch,
    Mem(MemOp),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Running,
    InBarrier(Cycles),
    Aborted(Cycles),
    Released,
}

struct PState {
    regs: Vec<Scalar>,
    pc: usize,
    iter: Option<u64>,
    time: Cycles,
    bd: TimeBreakdown,
    wb: BinaryHeap<Reverse<u64>>,
    pending: Pending,
    status: Status,
}

/// The executor's ready queue. Multi-processor runs interleave through the
/// time-ordered event queue; a single-processor run holds at most one
/// pending self-event at any moment (each dispatch re-enqueues only
/// itself), so the heap, tie-break sequence numbers, and per-push
/// profiling spans all collapse to an `Option` — same pop order and
/// timestamps, fewer host cycles on the `machine.exec` hot path that every
/// serial scenario and serial re-execution runs.
enum ReadyQueue {
    Heap(EventQueue<u32>),
    Single(Option<Cycles>),
}

impl ReadyQueue {
    fn push(&mut self, at: Cycles, p: u32) {
        match self {
            ReadyQueue::Heap(q) => q.push(at, p),
            ReadyQueue::Single(slot) => {
                debug_assert!(slot.is_none(), "single-proc executor double-scheduled");
                *slot = Some(at);
            }
        }
    }

    fn pop(&mut self) -> Option<(Cycles, u32)> {
        match self {
            ReadyQueue::Heap(q) => q.pop(),
            ReadyQueue::Single(slot) => slot.take().map(|t| (t, 0)),
        }
    }

    /// Whether no queued event is due at or before `t` — i.e. an event
    /// pushed at `t` would be the unique strict minimum and pop next.
    /// When true, the executor dispatches the action inline instead of
    /// round-tripping it through the queue: same order, same timestamps,
    /// no heap traffic. Ties (`== t`) take the queue so the FIFO
    /// sequence-number tie-break keeps its byte-exact order.
    fn none_before(&self, t: Cycles) -> bool {
        match self {
            ReadyQueue::Heap(q) => q.peek_time().is_none_or(|pt| pt > t),
            ReadyQueue::Single(slot) => slot.is_none_or(|pt| pt > t),
        }
    }
}

/// Runs one loop (or phase loop) on the machine.
pub struct Executor<'a> {
    cfg: &'a MachineConfig,
    ms: &'a mut MemSystem,
    image: &'a mut dyn specrt_ir::MemOracle,
    image_reader: fn(&mut dyn specrt_ir::MemOracle, ArrayId, u64) -> Scalar,
    programs: Vec<Program>,
    sched: &'a mut dyn Scheduler,
    route_priv: bool,
    speculative: bool,
    /// `(physical, logical)` pairs, scanned linearly on the store path: a
    /// run tracks at most a handful of arrays, so the scan beats hashing
    /// and keeps the dispatch allocation-free.
    copy_out_track: Vec<(ArrayId, ArrayId)>,
    start: Cycles,
}

fn default_reader(m: &mut dyn specrt_ir::MemOracle, arr: ArrayId, idx: u64) -> Scalar {
    m.read(arr, idx)
}

impl<'a> Executor<'a> {
    /// Creates an executor.
    ///
    /// * `programs` — one per processor (clone the same program for SPMD
    ///   phases; the software scheme passes per-processor instrumented
    ///   bodies).
    /// * `route_priv` — route accesses to privatized arrays to the
    ///   processor's private copy (hardware scheme and Ideal runs).
    /// * `speculative` — abort on protocol failures and turn execution
    ///   exceptions into [`FailReason::Exception`] (otherwise exceptions
    ///   panic — they indicate a bug in a non-speculative phase).
    ///
    /// # Panics
    ///
    /// Panics if `programs.len()` differs from the machine's processor
    /// count.
    pub fn new(
        cfg: &'a MachineConfig,
        ms: &'a mut MemSystem,
        image: &'a mut dyn specrt_ir::MemOracle,
        programs: Vec<Program>,
        sched: &'a mut dyn Scheduler,
    ) -> Self {
        assert_eq!(
            programs.len(),
            ms.procs() as usize,
            "one program per processor required"
        );
        Executor {
            cfg,
            ms,
            image,
            image_reader: default_reader,
            programs,
            sched,
            route_priv: false,
            speculative: false,
            copy_out_track: Vec::new(),
            start: Cycles::ZERO,
        }
    }

    /// Enables routing of privatized arrays to per-processor copies.
    pub fn route_privatized(mut self, on: bool) -> Self {
        self.route_priv = on;
        self
    }

    /// Marks the run as speculative (abort on failures/exceptions).
    pub fn speculative(mut self, on: bool) -> Self {
        self.speculative = on;
        self
    }

    /// Tracks last-writer values for `physical` writes, attributing them to
    /// `logical` for copy-out.
    pub fn track_copy_out(mut self, physical: ArrayId, logical: ArrayId) -> Self {
        match self.copy_out_track.iter_mut().find(|(p, _)| *p == physical) {
            Some((_, l)) => *l = logical,
            None => self.copy_out_track.push((physical, logical)),
        }
        self
    }

    /// Sets the virtual start time.
    pub fn starting_at(mut self, t: Cycles) -> Self {
        self.start = t;
        self
    }

    /// Runs the loop to completion or abort.
    pub fn run(mut self) -> ExecSummary {
        let _prof = specrt_prof::scope("machine.exec");
        let procs = self.ms.procs() as usize;
        // Move the programs out of `self` so `run_local` can hold a program
        // reference across `&mut self` calls (inline memory dispatch).
        let programs = std::mem::take(&mut self.programs);
        let mut states: Vec<PState> = (0..procs)
            .map(|p| PState {
                regs: vec![Scalar::ZERO; programs[p].reg_count() as usize],
                pc: 0,
                iter: None,
                time: self.start,
                bd: TimeBreakdown::new(),
                wb: BinaryHeap::new(),
                pending: Pending::Fetch,
                status: Status::Running,
            })
            .collect();
        let mut events: ReadyQueue = if procs == 1 {
            ReadyQueue::Single(Some(self.start))
        } else {
            let mut q = EventQueue::new();
            q.push_batch(self.start, (0..procs).map(|p| p as u32));
            ReadyQueue::Heap(q)
        };
        let mut exec_failure: Option<(FailReason, Cycles)> = None;
        let mut iterations = 0u64;
        let mut winners: BTreeMap<(ArrayId, u64), (u64, Scalar)> = BTreeMap::new();
        let mut barrier_arrivals = 0usize;
        let mut arrival_order: Vec<usize> = Vec::new();
        let mut finish_time = self.start;

        while let Some((t, p)) = events.pop() {
            let p = p as usize;
            let proc = ProcId(p as u32);
            // Abort check: the failure signal reaches processors
            // `abort_latency` after detection.
            if self.speculative {
                if let Some((_, tf)) = earliest_failure(self.ms.failure(), exec_failure) {
                    if t >= tf {
                        let stop = (tf + Cycles(self.cfg.abort_latency)).max(t);
                        states[p].status = Status::Aborted(stop);
                        continue;
                    }
                }
            }
            let pending = states[p].pending;
            match pending {
                Pending::Fetch => match self.sched.next(proc, t) {
                    SchedDecision::Done => {
                        {
                            let st = &mut states[p];
                            drain_write_buffer(st);
                        }
                        if self.cfg.detailed_barrier {
                            // Arrival: fetch&op on the barrier counter at
                            // its home (a real serialization point).
                            let t0 = states[p].time;
                            let done = self.ms.fetch_op(proc, BARRIER_ARRAY, 0, t0);
                            let st = &mut states[p];
                            st.bd.sync += done - t0;
                            st.time = done;
                        }
                        let st = &mut states[p];
                        st.status = Status::InBarrier(st.time);
                        barrier_arrivals += 1;
                        arrival_order.push(p);
                        if barrier_arrivals == procs {
                            let latest = states
                                .iter()
                                .filter_map(|s| match s.status {
                                    Status::InBarrier(a) => Some(a),
                                    _ => None,
                                })
                                .max()
                                .unwrap_or(t);
                            if self.cfg.detailed_barrier {
                                // The last arriver flips the sense flag;
                                // every waiter re-reads it (a hot spot that
                                // serializes at the flag's home bank).
                                let last = *arrival_order.last().expect("nonempty");
                                let flag_done =
                                    self.ms
                                        .fetch_op(ProcId(last as u32), BARRIER_ARRAY, 1, latest);
                                for &q in &arrival_order {
                                    let wake = self.ms.fetch_op(
                                        ProcId(q as u32),
                                        BARRIER_ARRAY,
                                        1,
                                        flag_done,
                                    );
                                    let s = &mut states[q];
                                    if let Status::InBarrier(a) = s.status {
                                        s.bd.sync += wake - a;
                                        s.time = wake;
                                        s.status = Status::Released;
                                        finish_time = finish_time.max(wake);
                                    }
                                }
                            } else {
                                let release = latest + Cycles(self.cfg.barrier_overhead);
                                for s in &mut states {
                                    if let Status::InBarrier(a) = s.status {
                                        s.bd.sync += release - a;
                                        s.time = release;
                                        s.status = Status::Released;
                                    }
                                }
                                finish_time = finish_time.max(release);
                            }
                        }
                    }
                    SchedDecision::Run {
                        iter,
                        overhead,
                        wait,
                    } => {
                        {
                            let st = &mut states[p];
                            st.bd.busy += overhead;
                            st.bd.sync += wait;
                            st.time = st.time + overhead + wait;
                            st.bd.busy += Cycles(self.cfg.iter_reset_cost);
                            st.time += self.cfg.iter_reset_cost;
                            st.iter = Some(iter);
                            st.pc = 0;
                            for r in &mut st.regs {
                                *r = Scalar::ZERO;
                            }
                        }
                        self.ms.begin_iteration(proc, iter);
                        if self.ms.tracer().enabled() {
                            let policy = self.sched.name();
                            self.ms.tracer_mut().emit(TraceEvent::Sched {
                                at: t,
                                proc: p as u32,
                                iter,
                                policy,
                                overhead,
                                wait,
                            });
                        }
                        self.run_local(
                            p,
                            &programs,
                            &mut states,
                            &mut events,
                            &mut winners,
                            &mut exec_failure,
                            &mut iterations,
                        );
                    }
                },
                Pending::Mem(op) => {
                    self.issue_mem(p, op, &mut states, &mut winners, &mut exec_failure);
                    if states[p].status == Status::Running {
                        self.run_local(
                            p,
                            &programs,
                            &mut states,
                            &mut events,
                            &mut winners,
                            &mut exec_failure,
                            &mut iterations,
                        );
                    }
                }
            }
        }

        // Finalize.
        let failure = earliest_failure(
            if self.speculative {
                self.ms.failure()
            } else {
                None
            },
            exec_failure,
        );
        let end = match failure {
            Some((reason, at)) => {
                let stop = at + Cycles(self.cfg.abort_latency);
                for s in &mut states {
                    let t_end = match s.status {
                        Status::Aborted(x) => x.max(stop),
                        Status::InBarrier(a) => a.max(stop),
                        Status::Released | Status::Running => s.time.max(stop),
                    };
                    finish_time = finish_time.max(t_end);
                }
                ExecEnd::Failed { reason, at }
            }
            None => {
                for s in &states {
                    finish_time = finish_time.max(s.time);
                }
                ExecEnd::Completed
            }
        };

        ExecSummary {
            end,
            finish_time,
            per_proc: states.into_iter().map(|s| s.bd).collect(),
            iterations,
            winners,
        }
    }

    /// Executes local instructions for `p` until the next shared action.
    /// A memory op whose issue time precedes every queued event is
    /// dispatched inline (the queued event would pop next anyway — same
    /// order, same timestamps, no heap round-trip); otherwise, and at
    /// iteration boundaries, the action parks as `pending` with an event
    /// scheduled at its time.
    #[allow(clippy::too_many_arguments)]
    fn run_local(
        &mut self,
        p: usize,
        programs: &[Program],
        states: &mut [PState],
        events: &mut ReadyQueue,
        winners: &mut BTreeMap<(ArrayId, u64), (u64, Scalar)>,
        exec_failure: &mut Option<(FailReason, Cycles)>,
        iterations: &mut u64,
    ) {
        let program = &programs[p];
        let iter = states[p].iter.expect("run_local outside an iteration");
        loop {
            let st = &mut states[p];
            if st.pc >= program.len() {
                *iterations += 1;
                st.iter = None;
                st.pending = Pending::Fetch;
                events.push(st.time, p as u32);
                return;
            }
            match program.instr(st.pc) {
                Instr::Compute(n) => {
                    st.bd.busy += n as u64;
                    st.time += n as u64;
                    st.pc += 1;
                }
                Instr::Mov { dst, src } => {
                    st.regs[dst.0 as usize] = eval(&st.regs, src, iter, p as u32);
                    st.bd.busy += 1;
                    st.time += 1;
                    st.pc += 1;
                }
                Instr::Bin { op, dst, a, b } => {
                    let va = eval(&st.regs, a, iter, p as u32);
                    let vb = eval(&st.regs, b, iter, p as u32);
                    match op.apply(va, vb) {
                        Some(v) => st.regs[dst.0 as usize] = v,
                        None => {
                            self.exception(st, exec_failure);
                            return;
                        }
                    }
                    st.bd.busy += 1;
                    st.time += 1;
                    st.pc += 1;
                }
                Instr::Bz { cond, target } => {
                    let c = eval(&st.regs, cond, iter, p as u32);
                    st.bd.busy += 1;
                    st.time += 1;
                    st.pc = if c.is_zero() { target } else { st.pc + 1 };
                }
                Instr::Bnz { cond, target } => {
                    let c = eval(&st.regs, cond, iter, p as u32);
                    st.bd.busy += 1;
                    st.time += 1;
                    st.pc = if c.is_zero() { st.pc + 1 } else { target };
                }
                Instr::Jmp { target } => {
                    st.bd.busy += 1;
                    st.time += 1;
                    st.pc = target;
                }
                Instr::Load { dst, arr, idx } => {
                    let i = eval(&st.regs, idx, iter, p as u32);
                    let idx = match index_of(i) {
                        Some(v) => v,
                        None => {
                            self.exception(st, exec_failure);
                            return;
                        }
                    };
                    let op = MemOp {
                        write: false,
                        arr,
                        idx,
                        dst: Some(dst),
                        value: None,
                    };
                    st.pending = Pending::Mem(op);
                    st.pc += 1;
                    if !self.dispatch_inline(p, op, states, events, winners, exec_failure) {
                        return;
                    }
                }
                Instr::Store { arr, idx, src } => {
                    let i = eval(&st.regs, idx, iter, p as u32);
                    let idx = match index_of(i) {
                        Some(v) => v,
                        None => {
                            self.exception(st, exec_failure);
                            return;
                        }
                    };
                    let value = eval(&st.regs, src, iter, p as u32);
                    let op = MemOp {
                        write: true,
                        arr,
                        idx,
                        dst: None,
                        value: Some(value),
                    };
                    st.pending = Pending::Mem(op);
                    st.pc += 1;
                    if !self.dispatch_inline(p, op, states, events, winners, exec_failure) {
                        return;
                    }
                }
            }
        }
    }

    /// Issues a just-parked memory op inline when its event would be the
    /// queue's unique strict minimum, mirroring the main loop's dispatch
    /// (abort check first, then issue). Returns whether local execution may
    /// continue; `false` means the op was queued instead, or the processor
    /// stopped running.
    fn dispatch_inline(
        &mut self,
        p: usize,
        op: MemOp,
        states: &mut [PState],
        events: &mut ReadyQueue,
        winners: &mut BTreeMap<(ArrayId, u64), (u64, Scalar)>,
        exec_failure: &mut Option<(FailReason, Cycles)>,
    ) -> bool {
        let t = states[p].time;
        if !events.none_before(t) {
            events.push(t, p as u32);
            return false;
        }
        if self.speculative {
            if let Some((_, tf)) = earliest_failure(self.ms.failure(), *exec_failure) {
                if t >= tf {
                    let stop = (tf + Cycles(self.cfg.abort_latency)).max(t);
                    states[p].status = Status::Aborted(stop);
                    return false;
                }
            }
        }
        self.issue_mem(p, op, states, winners, exec_failure);
        states[p].status == Status::Running
    }

    fn issue_mem(
        &mut self,
        p: usize,
        op: MemOp,
        states: &mut [PState],
        winners: &mut BTreeMap<(ArrayId, u64), (u64, Scalar)>,
        exec_failure: &mut Option<(FailReason, Cycles)>,
    ) {
        let proc = ProcId(p as u32);
        let st = &mut states[p];
        let t = st.time;
        let iter = st.iter.expect("memory op outside an iteration");
        let phys = self.physical(op.arr, proc);
        if op.write {
            let out = self.ms.write(proc, op.arr, op.idx, t);
            if let Some(range) = out.read_in.clone() {
                for e in range {
                    let v = (self.image_reader)(self.image, op.arr, e);
                    self.image.write(phys, e, v);
                }
            }
            let value = op.value.expect("store carries a value");
            self.image.write(phys, op.idx, value);
            if let Some(&(_, logical)) = self.copy_out_track.iter().find(|(p, _)| *p == phys) {
                let entry = winners.entry((logical, op.idx)).or_insert((0, value));
                if iter + 1 >= entry.0 {
                    *entry = (iter + 1, value);
                }
            }
            st.bd.busy += 1;
            st.time += 1;
            // Retire completed stores; stall if the buffer is full.
            while let Some(&Reverse(c)) = st.wb.peek() {
                if Cycles(c) <= st.time {
                    st.wb.pop();
                } else {
                    break;
                }
            }
            while st.wb.len() >= self.cfg.write_buffer {
                let Reverse(c) = st.wb.pop().expect("nonempty");
                let c = Cycles(c);
                if c > st.time {
                    st.bd.mem += c - st.time;
                    st.time = c;
                }
            }
            st.wb.push(Reverse(out.complete_at.raw()));
        } else {
            let out = self.ms.read(proc, op.arr, op.idx, t);
            if let Some(range) = out.read_in.clone() {
                for e in range {
                    let v = (self.image_reader)(self.image, op.arr, e);
                    self.image.write(phys, e, v);
                }
            }
            let value = (self.image_reader)(self.image, phys, op.idx);
            st.regs[op.dst.expect("load has a destination").0 as usize] = value;
            st.bd.busy += 1;
            let done = out.complete_at.max(t + Cycles(1));
            st.bd.mem += done - (t + Cycles(1));
            st.time = done;
        }
        // Exceptions are only raised by instruction semantics; memory ops
        // themselves cannot fail functionally.
        let _ = exec_failure;
    }

    fn physical(&self, arr: ArrayId, proc: ProcId) -> ArrayId {
        if self.route_priv && self.ms.plan().kind_of(arr).is_privatized() {
            private_copy_id(arr, proc)
        } else {
            arr
        }
    }

    fn exception(&self, st: &mut PState, exec_failure: &mut Option<(FailReason, Cycles)>) {
        assert!(
            self.speculative,
            "execution exception in a non-speculative phase (pc {}, time {})",
            st.pc, st.time
        );
        let at = st.time;
        match exec_failure {
            Some((_, tf)) if *tf <= at => {}
            _ => *exec_failure = Some((FailReason::Exception, at)),
        }
        st.status = Status::Aborted(at);
    }
}

fn eval(regs: &[Scalar], op: Operand, iter: u64, proc: u32) -> Scalar {
    match op {
        Operand::Reg(Reg(r)) => regs[r as usize],
        Operand::ImmI(v) => Scalar::Int(v),
        Operand::ImmF(v) => Scalar::Float(v),
        Operand::Iter => Scalar::Int(iter as i64),
        Operand::ProcId => Scalar::Int(proc as i64),
    }
}

fn index_of(v: Scalar) -> Option<u64> {
    match v {
        Scalar::Int(i) if i >= 0 => Some(i as u64),
        _ => None,
    }
}

fn drain_write_buffer(st: &mut PState) {
    while let Some(Reverse(c)) = st.wb.pop() {
        let c = Cycles(c);
        if c > st.time {
            st.bd.mem += c - st.time;
            st.time = c;
        }
    }
}

fn earliest_failure(
    a: Option<(FailReason, Cycles)>,
    b: Option<(FailReason, Cycles)>,
) -> Option<(FailReason, Cycles)> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.1 <= y.1 { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_cache::CacheConfig;
    use specrt_ir::{BinOp, ProgramBuilder};
    use specrt_mem::{ElemSize, MemoryImage, PlacementPolicy};
    use specrt_proto::MemSystemConfig;
    use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

    use crate::sched::StaticChunked;

    const A: ArrayId = ArrayId(0);

    fn machine(procs: u32) -> (MachineConfig, MemSystem) {
        let cfg = MachineConfig {
            mem: MemSystemConfig {
                procs,
                cache: CacheConfig {
                    l1_lines: 32,
                    l2_lines: 128,
                },
                ..MemSystemConfig::default()
            },
            ..MachineConfig::default()
        };
        let ms = MemSystem::new(cfg.mem);
        (cfg, ms)
    }

    fn store_iter_body() -> Program {
        // A[iter] = iter
        let mut b = ProgramBuilder::new();
        b.store(A, Operand::Iter, Operand::Iter);
        b.build().unwrap()
    }

    #[test]
    fn parallel_store_loop_completes_and_writes_all() {
        let (cfg, mut ms) = machine(2);
        ms.alloc_array(A, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let mut image = MemoryImage::new();
        image.register(A, 64);
        let mut sched = StaticChunked::new(64, 2, cfg.sched_static_overhead);
        let body = store_iter_body();
        let summary = Executor::new(
            &cfg,
            &mut ms,
            &mut image,
            vec![body.clone(), body],
            &mut sched,
        )
        .run();
        assert_eq!(summary.end, ExecEnd::Completed);
        assert_eq!(summary.iterations, 64);
        for i in 0..64u64 {
            assert_eq!(image.read(A, i), Scalar::Int(i as i64), "A[{i}]");
        }
        assert!(summary.finish_time > Cycles::ZERO);
        assert_eq!(summary.per_proc.len(), 2);
        // Both processors did work and synchronized at the barrier.
        assert!(summary.per_proc.iter().all(|b| b.busy > Cycles::ZERO));
    }

    #[test]
    fn parallel_execution_is_faster_than_serial() {
        // 1-processor machine (all data local).
        let (cfg1, mut ms1) = machine(1);
        ms1.alloc_array(
            A,
            128,
            ElemSize::W8,
            PlacementPolicy::Local(specrt_mem::NodeId(0)),
        );
        ms1.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let mut img1 = MemoryImage::new();
        img1.register(A, 128);
        let mut sched1 = StaticChunked::new(128, 1, cfg1.sched_static_overhead);
        let body = store_iter_body();
        let serial =
            Executor::new(&cfg1, &mut ms1, &mut img1, vec![body.clone()], &mut sched1).run();

        let (cfg4, mut ms4) = machine(4);
        ms4.alloc_array(A, 128, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms4.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let mut img4 = MemoryImage::new();
        img4.register(A, 128);
        let mut sched4 = StaticChunked::new(128, 4, cfg4.sched_static_overhead);
        let par = Executor::new(
            &cfg4,
            &mut ms4,
            &mut img4,
            vec![body.clone(), body.clone(), body.clone(), body],
            &mut sched4,
        )
        .run();
        assert!(
            par.finish_time < serial.finish_time,
            "parallel {} vs serial {}",
            par.finish_time,
            serial.finish_time
        );
        assert!(img1.same_contents(&img4, &[A]));
    }

    #[test]
    fn speculative_conflict_aborts_early() {
        // All iterations write A[0]: under the non-privatization test two
        // processors collide and the run must abort.
        let (cfg, mut ms) = machine(2);
        ms.alloc_array(A, 64, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        ms.configure_loop(plan, IterationNumbering::iteration_wise());
        let mut image = MemoryImage::new();
        image.register(A, 64);
        let mut b = ProgramBuilder::new();
        b.store(A, Operand::ImmI(0), Operand::Iter);
        let body = b.build().unwrap();
        let mut sched = StaticChunked::new(64, 2, cfg.sched_static_overhead);
        let summary = Executor::new(
            &cfg,
            &mut ms,
            &mut image,
            vec![body.clone(), body],
            &mut sched,
        )
        .speculative(true)
        .run();
        match summary.end {
            ExecEnd::Failed { at, .. } => {
                assert!(summary.iterations < 64, "must abort before completing");
                assert!(summary.finish_time >= at);
            }
            ExecEnd::Completed => panic!("conflicting loop must fail"),
        }
    }

    #[test]
    fn privatized_routing_keeps_shared_array_clean() {
        let (cfg, mut ms) = machine(2);
        ms.alloc_array(A, 16, ElemSize::W8, PlacementPolicy::RoundRobin);
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: true,
                copy_out: true,
            },
        );
        ms.configure_loop(plan, IterationNumbering::iteration_wise());
        let mut image = MemoryImage::new();
        image.register(A, 16);
        for p in 0..2 {
            image.register(private_copy_id(A, ProcId(p)), 16);
        }
        // Every iteration writes A[0] then reads it: privatizable.
        let mut b = ProgramBuilder::new();
        b.store(A, Operand::ImmI(0), Operand::Iter);
        let v = b.load(A, Operand::ImmI(0));
        b.binop(BinOp::Add, Operand::Reg(v), Operand::ImmI(1));
        let body = b.build().unwrap();
        let mut sched = StaticChunked::new(8, 2, cfg.sched_static_overhead);
        let summary = Executor::new(
            &cfg,
            &mut ms,
            &mut image,
            vec![body.clone(), body],
            &mut sched,
        )
        .speculative(true)
        .route_privatized(true)
        .track_copy_out(private_copy_id(A, ProcId(0)), A)
        .track_copy_out(private_copy_id(A, ProcId(1)), A)
        .run();
        assert_eq!(summary.end, ExecEnd::Completed);
        // Shared copy untouched during the loop.
        assert_eq!(image.read(A, 0), Scalar::ZERO);
        // The winner is the last iteration (7, stamp 8) on processor 1.
        assert_eq!(summary.winners[&(A, 0)], (8, Scalar::Int(7)));
    }

    #[test]
    fn exception_in_speculative_run_fails() {
        let (cfg, mut ms) = machine(2);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let mut image = MemoryImage::new();
        image.register(A, 8);
        // Divide by zero on iteration 3.
        let mut b = ProgramBuilder::new();
        let d = b.binop(BinOp::CmpEq, Operand::Iter, Operand::ImmI(3));
        let ok = b.label();
        b.bz(Operand::Reg(d), ok);
        b.binop(BinOp::Div, Operand::ImmI(1), Operand::ImmI(0));
        b.bind(ok);
        b.store(A, Operand::Iter, Operand::Iter);
        let body = b.build().unwrap();
        let mut sched = StaticChunked::new(8, 2, cfg.sched_static_overhead);
        let summary = Executor::new(
            &cfg,
            &mut ms,
            &mut image,
            vec![body.clone(), body],
            &mut sched,
        )
        .speculative(true)
        .run();
        assert!(matches!(
            summary.end,
            ExecEnd::Failed {
                reason: FailReason::Exception,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "exception in a non-speculative phase")]
    fn exception_in_serial_run_panics() {
        let (cfg, mut ms) = machine(1);
        ms.alloc_array(A, 8, ElemSize::W8, PlacementPolicy::RoundRobin);
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let mut image = MemoryImage::new();
        image.register(A, 8);
        let mut b = ProgramBuilder::new();
        b.binop(BinOp::Div, Operand::ImmI(1), Operand::ImmI(0));
        let body = b.build().unwrap();
        let mut sched = StaticChunked::new(1, 1, cfg.sched_static_overhead);
        let _ = Executor::new(&cfg, &mut ms, &mut image, vec![body], &mut sched).run();
    }

    #[test]
    fn mem_time_reflects_misses() {
        let (cfg, mut ms) = machine(1);
        ms.alloc_array(
            A,
            1024,
            ElemSize::W8,
            PlacementPolicy::Local(specrt_mem::NodeId(0)),
        );
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
        let mut image = MemoryImage::new();
        image.register(A, 1024);
        // Strided reads: every iteration touches a new line.
        let mut b = ProgramBuilder::new();
        let i8 = b.binop(BinOp::Mul, Operand::Iter, Operand::ImmI(8));
        b.load(A, Operand::Reg(i8));
        let body = b.build().unwrap();
        let mut sched = StaticChunked::new(128, 1, cfg.sched_static_overhead);
        let summary = Executor::new(&cfg, &mut ms, &mut image, vec![body], &mut sched).run();
        let bd = summary.per_proc[0];
        assert!(
            bd.mem > bd.busy,
            "cold strided reads should be memory-bound: {bd}"
        );
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;
    use specrt_cache::CacheConfig;
    use specrt_ir::{BinOp, ProgramBuilder};
    use specrt_mem::{ElemSize, MemoryImage, PlacementPolicy};
    use specrt_proto::MemSystemConfig;
    use specrt_spec::{IterationNumbering, TestPlan};

    use crate::config::MachineConfig;
    use crate::sched::{DynamicSelf, StaticChunked};

    const A: ArrayId = ArrayId(0);

    /// The Busy/Sync/Mem decomposition is *complete*: for a completed run,
    /// every processor's components sum exactly to the wall-clock span
    /// (barrier release time minus start). No cycle is lost or
    /// double-counted — this is what makes the Figure 12 bars meaningful.
    #[test]
    fn breakdown_is_exhaustive_for_every_processor() {
        for (procs, dynamic) in [(1u32, false), (4, false), (4, true)] {
            let cfg = MachineConfig {
                mem: MemSystemConfig {
                    procs,
                    cache: CacheConfig {
                        l1_lines: 16,
                        l2_lines: 64,
                    },
                    ..MemSystemConfig::default()
                },
                ..MachineConfig::default()
            };
            let mut ms = MemSystem::new(cfg.mem);
            ms.alloc_array(A, 256, ElemSize::W8, PlacementPolicy::RoundRobin);
            ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
            let mut image = MemoryImage::new();
            image.register(A, 256);
            // A mixed body: loads, stores, ALU, a data-dependent branch.
            let mut b = ProgramBuilder::new();
            let v = b.load(A, Operand::Iter);
            let c = b.binop(BinOp::CmpLt, Operand::Iter, Operand::ImmI(64));
            let skip = b.label();
            b.bz(Operand::Reg(c), skip);
            let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
            b.store(A, Operand::Iter, Operand::Reg(v2));
            b.bind(skip);
            b.compute(13);
            let body = b.build().unwrap();

            let start = Cycles(777);
            let mut s_static;
            let mut s_dyn;
            let sched: &mut dyn crate::sched::Scheduler = if dynamic {
                s_dyn = DynamicSelf::new(128, procs, 4, cfg.sched_lock_hold, 2);
                &mut s_dyn
            } else {
                s_static = StaticChunked::new(128, procs, 2);
                &mut s_static
            };
            let summary =
                Executor::new(&cfg, &mut ms, &mut image, vec![body; procs as usize], sched)
                    .starting_at(start)
                    .run();
            assert_eq!(summary.end, ExecEnd::Completed);
            let span = summary.finish_time - start;
            for (p, bd) in summary.per_proc.iter().enumerate() {
                assert_eq!(
                    bd.total(),
                    span,
                    "proc {p} (procs={procs}, dynamic={dynamic}): {bd} vs span {span}"
                );
            }
        }
    }
}
