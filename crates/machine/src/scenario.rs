//! The paper's four execution scenarios (§6): `Serial`, `Ideal`, `SW`
//! (software LRPD) and `HW` (the proposed hardware scheme).
//!
//! Each scenario is a sequence of *phases* run on the simulated machine;
//! every phase is an executor run whose time and Busy/Sync/Mem breakdown
//! accumulate into the result:
//!
//! * **Serial** — all iterations on one processor, all data local (§6:
//!   "the uniprocessor execution of the loop, where all the data is
//!   allocated in the memory local to the processor").
//! * **Ideal** — the doall without any tests: privatized arrays still use
//!   private copies (the compiler privatized them) but no dependence test
//!   runs and no update messages are sent.
//! * **SW** — backup → shadow zero-out → marking loop (instrumented
//!   per-processor bodies) → merging-analysis loop → outcome; on failure,
//!   restore + serial re-execution; on success, copy-out of live
//!   privatized arrays.
//! * **HW** — backup → speculative loop under the protocol extensions with
//!   immediate abort on FAIL; on failure, restore + serial re-execution;
//!   on success, copy-out.
//!
//! Serial re-execution is modelled on a one-processor machine with local
//! data, matching the paper's accounting ("the HW execution time includes
//! the parallel execution up to when the dependence is detected … plus the
//! Serial time", §6.2).

use specrt_engine::{Cycles, StatSet, TimeBreakdown};
use specrt_ir::{ArrayId, Program, Scalar};
use specrt_lrpd::phases::{
    copy_body_region, merge_analysis_body, merge_analysis_body_bitmap, reduction_body,
    zero_shadow_body, zero_shadow_body_bitmap,
};
use specrt_lrpd::shadow::{CNT_ATM, CNT_ATW, CNT_BAD_NP, CNT_BAD_WR, CNT_LEN};
use specrt_lrpd::{instrument_for_proc, sw_private_copy_id, InstrumentConfig, ShadowIds};
use specrt_mem::{ArrayBackup, ElemSize, MemoryImage, NodeId, PlacementPolicy, ProcId};
use specrt_proto::{private_copy_id, FaultConfig, MemSystem, NetSummary, TraceEvent};
use specrt_spec::{fault, FailReason, IterationNumbering, ProtocolKind, TestPlan};

use crate::config::{MachineConfig, RecoveryPolicy};
use crate::exec::{ExecEnd, Executor};
use crate::loopspec::{LoopSpec, ScheduleKind};
use crate::sched::{BlockCyclic, DynamicSelf, Replicated, Scheduler, StaticChunked};

/// Reserved id bit for backup copies.
const BACKUP_BASE: u32 = 0x1000_0000;
/// Reserved id bit for copy-out timing scratch arrays.
const SCRATCH_BASE: u32 = 0x0800_0000;
/// Reserved id bit for the software scheme's global reduction flags.
const REDUCE_BASE: u32 = 0x0400_0000;

fn backup_id(arr: ArrayId) -> ArrayId {
    ArrayId(BACKUP_BASE | arr.0)
}

fn scratch_id(arr: ArrayId) -> ArrayId {
    ArrayId(SCRATCH_BASE | arr.0)
}

fn reduce_id(arr: ArrayId) -> ArrayId {
    ArrayId(REDUCE_BASE | arr.0)
}

/// Which software-test granularity to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwVariant {
    /// Iteration-wise stamps, any scheduling.
    IterationWise,
    /// Processor-wise (1-bit) test: stamps collapse to the processor's
    /// chunk; requires static contiguous scheduling (§2.2.3).
    ProcessorWise,
}

/// An execution scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Uniprocessor, local data, no tests.
    Serial,
    /// Doall without tests (upper bound).
    Ideal,
    /// Software LRPD test.
    Sw(SwVariant),
    /// Hardware speculation protocols.
    Hw,
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scenario::Serial => write!(f, "Serial"),
            Scenario::Ideal => write!(f, "Ideal"),
            Scenario::Sw(SwVariant::IterationWise) => write!(f, "SW(iter)"),
            Scenario::Sw(SwVariant::ProcessorWise) => write!(f, "SW(proc)"),
            Scenario::Hw => write!(f, "HW"),
        }
    }
}

/// Result of running a loop under one scenario.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scenario run.
    pub scenario: Scenario,
    /// Loop name.
    pub name: String,
    /// End-to-end wall-clock cycles, including all phases (and serial
    /// re-execution if the test failed).
    pub total_cycles: Cycles,
    /// Average per-processor Busy/Sync/Mem decomposition over all phases.
    pub breakdown: TimeBreakdown,
    /// Whether the run-time test passed (`None` for Serial/Ideal).
    pub passed: Option<bool>,
    /// Failure description if the test failed.
    pub failure: Option<String>,
    /// Iterations executed speculatively (before any abort).
    pub iterations: u64,
    /// Final contents of the loop's arrays (for correctness checks).
    pub final_image: MemoryImage,
    /// Protocol statistics (HW/Ideal runs).
    pub stats: StatSet,
    /// Interconnect traffic summary (messages, hops, queueing, per-link
    /// occupancy) of the run's speculative machine.
    pub net: NetSummary,
    /// Structured trace events collected during the run (empty unless
    /// [`MachineConfig::trace_capacity`] is non-zero).
    pub trace: Vec<TraceEvent>,
}

impl RunResult {
    /// Speedup of this run relative to a serial run of the same loop.
    pub fn speedup_over(&self, serial: &RunResult) -> f64 {
        serial.total_cycles.raw() as f64 / self.total_cycles.raw() as f64
    }
}

struct Accum {
    per_proc: Vec<TimeBreakdown>,
    now: Cycles,
}

impl Accum {
    fn new(procs: usize) -> Self {
        Accum {
            per_proc: vec![TimeBreakdown::new(); procs],
            now: Cycles::ZERO,
        }
    }

    fn absorb(&mut self, summary: &crate::exec::ExecSummary) {
        for (acc, bd) in self.per_proc.iter_mut().zip(&summary.per_proc) {
            *acc = acc.merged(bd);
        }
        self.now = self.now.max(summary.finish_time);
    }

    fn average(&self) -> TimeBreakdown {
        let n = self.per_proc.len().max(1) as u64;
        self.per_proc
            .iter()
            .fold(TimeBreakdown::new(), |a, b| a.merged(b))
            .scaled(1, n)
    }
}

fn make_sched(
    kind: ScheduleKind,
    total: u64,
    procs: u32,
    cfg: &MachineConfig,
) -> Box<dyn Scheduler> {
    match kind {
        ScheduleKind::Static => {
            Box::new(StaticChunked::new(total, procs, cfg.sched_static_overhead))
        }
        ScheduleKind::BlockCyclic { block } => Box::new(BlockCyclic::new(
            total,
            procs,
            block,
            cfg.sched_static_overhead,
        )),
        ScheduleKind::Dynamic { block } => Box::new(DynamicSelf::new(
            total,
            procs,
            block,
            cfg.sched_lock_hold,
            cfg.sched_static_overhead,
        )),
    }
}

/// Allocates and registers the loop's arrays on a machine.
fn setup_arrays(spec: &LoopSpec, ms: &mut MemSystem, image: &mut MemoryImage, local: bool) {
    let _prof = specrt_prof::scope("machine.setup");
    for a in &spec.arrays {
        let policy = if local {
            PlacementPolicy::Local(NodeId(0))
        } else {
            PlacementPolicy::RoundRobin
        };
        ms.alloc_array(a.id, a.len, a.elem, policy);
        image.register_with(a.id, a.padded_init());
    }
    // Synchronization infrastructure: barrier counter + sense flag.
    ms.alloc_array(
        crate::exec::BARRIER_ARRAY,
        2,
        ElemSize::W8,
        PlacementPolicy::Local(NodeId(0)),
    );
    image.register(crate::exec::BARRIER_ARRAY, 2);
}

/// Runs `spec` under `scenario` on a `procs`-processor machine.
///
/// # Panics
///
/// Panics on malformed specs (undeclared arrays, invalid programs) — these
/// are construction bugs, not run-time conditions.
pub fn run_scenario(spec: &LoopSpec, scenario: Scenario, procs: u32) -> RunResult {
    run_scenario_configured(spec, scenario, MachineConfig::with_procs(procs))
}

/// [`run_scenario`] with an explicit machine configuration (cache geometry,
/// latencies, write-buffer depth, …). The `Serial` scenario and any serial
/// re-execution use the same configuration with one processor.
pub fn run_scenario_configured(
    spec: &LoopSpec,
    scenario: Scenario,
    cfg: MachineConfig,
) -> RunResult {
    match scenario {
        Scenario::Serial => run_serial(spec, cfg),
        Scenario::Ideal => run_ideal(spec, cfg),
        Scenario::Hw => run_hw(spec, cfg),
        Scenario::Sw(variant) => run_sw(spec, cfg, variant),
    }
}

fn single_proc(mut cfg: MachineConfig) -> MachineConfig {
    cfg.mem.procs = 1;
    cfg
}

// ----------------------------------------------------------------------
// Serial
// ----------------------------------------------------------------------

fn run_serial(spec: &LoopSpec, cfg: MachineConfig) -> RunResult {
    let cfg = single_proc(cfg);
    let mut ms = crate::pool::lease(cfg.mem);
    if cfg.trace_capacity > 0 {
        ms.enable_event_trace(cfg.trace_capacity);
        ms.set_net_trace(cfg.trace_net);
    }
    let mut image = MemoryImage::new();
    setup_arrays(spec, &mut ms, &mut image, true);
    ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
    let mut sched = StaticChunked::new(spec.iters, 1, cfg.sched_static_overhead);
    let summary = Executor::new(
        &cfg,
        &mut ms,
        &mut image,
        vec![spec.body.clone()],
        &mut sched,
    )
    .run();
    assert_eq!(
        summary.end,
        ExecEnd::Completed,
        "serial execution cannot fail"
    );
    RunResult {
        scenario: Scenario::Serial,
        name: spec.name.clone(),
        total_cycles: summary.finish_time,
        breakdown: summary.per_proc[0],
        passed: None,
        failure: None,
        iterations: summary.iterations,
        final_image: image,
        stats: ms.stats().clone(),
        net: ms.net_summary(),
        trace: ms.take_event_trace(),
    }
}

/// Serial re-execution after a failed speculation: runs the loop on a
/// fresh one-processor machine starting from `restored` contents, and
/// copies the results back.
fn serial_reexec(
    spec: &LoopSpec,
    restored: &MemoryImage,
    cfg: MachineConfig,
) -> (Cycles, TimeBreakdown, MemoryImage) {
    let _prof = specrt_prof::scope("machine.serial_reexec");
    let cfg = single_proc(cfg);
    let mut ms = crate::pool::lease(cfg.mem);
    let mut image = MemoryImage::new();
    for a in &spec.arrays {
        ms.alloc_array(a.id, a.len, a.elem, PlacementPolicy::Local(NodeId(0)));
        image.register_with(a.id, restored.contents(a.id));
    }
    ms.alloc_array(
        crate::exec::BARRIER_ARRAY,
        2,
        ElemSize::W8,
        PlacementPolicy::Local(NodeId(0)),
    );
    image.register(crate::exec::BARRIER_ARRAY, 2);
    ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
    let mut sched = StaticChunked::new(spec.iters, 1, cfg.sched_static_overhead);
    let summary = Executor::new(
        &cfg,
        &mut ms,
        &mut image,
        vec![spec.body.clone()],
        &mut sched,
    )
    .run();
    assert_eq!(summary.end, ExecEnd::Completed, "re-execution cannot fail");
    (summary.finish_time, summary.per_proc[0], image)
}

/// [`serial_reexec`] restricted to the suffix a checkpoint did not cover:
/// re-runs only `[start, spec.iters)` serially, starting from the committed
/// checkpoint image. Even this fallback path beats the whole-loop safety
/// net whenever `start > 0`.
fn serial_reexec_from(
    spec: &LoopSpec,
    restored: &MemoryImage,
    start: u64,
    cfg: MachineConfig,
) -> (Cycles, TimeBreakdown, MemoryImage) {
    let _prof = specrt_prof::scope("machine.serial_reexec");
    let cfg = single_proc(cfg);
    let mut ms = crate::pool::lease(cfg.mem);
    let mut image = MemoryImage::new();
    for a in &spec.arrays {
        ms.alloc_array(a.id, a.len, a.elem, PlacementPolicy::Local(NodeId(0)));
        image.register_with(a.id, restored.contents(a.id));
    }
    ms.alloc_array(
        crate::exec::BARRIER_ARRAY,
        2,
        ElemSize::W8,
        PlacementPolicy::Local(NodeId(0)),
    );
    image.register(crate::exec::BARRIER_ARRAY, 2);
    ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());
    let inner = Box::new(StaticChunked::new(
        spec.iters - start,
        1,
        cfg.sched_static_overhead,
    ));
    let mut sched = crate::sched::Windowed::new(inner, start);
    let summary = Executor::new(
        &cfg,
        &mut ms,
        &mut image,
        vec![spec.body.clone()],
        &mut sched,
    )
    .run();
    assert_eq!(summary.end, ExecEnd::Completed, "re-execution cannot fail");
    (summary.finish_time, summary.per_proc[0], image)
}

// ----------------------------------------------------------------------
// Ideal
// ----------------------------------------------------------------------

fn run_ideal(spec: &LoopSpec, cfg: MachineConfig) -> RunResult {
    let procs = cfg.procs();
    let mut ms = crate::pool::lease(cfg.mem);
    if cfg.trace_capacity > 0 {
        ms.enable_event_trace(cfg.trace_capacity);
        ms.set_net_trace(cfg.trace_net);
    }
    let mut image = MemoryImage::new();
    setup_arrays(spec, &mut ms, &mut image, false);

    // Privatized arrays keep their data path; non-privatized tested arrays
    // revert to plain coherence; no test runs at all.
    let mut plan = TestPlan::new();
    for (arr, kind) in spec.plan.arrays_under_test() {
        if kind.is_privatized() {
            plan.set(arr, kind);
        }
    }
    let priv_arrays = plan.priv_arrays();
    ms.configure_loop(plan, spec.numbering);
    ms.set_test_enabled(false);
    for &arr in &priv_arrays {
        for p in 0..procs {
            image.register(private_copy_id(arr, ProcId(p)), spec.array(arr).len);
        }
    }
    // Scratch arrays for copy-out timing.
    let live_priv: Vec<ArrayId> = spec
        .live_after
        .iter()
        .copied()
        .filter(|a| priv_arrays.contains(a))
        .collect();
    for &arr in &live_priv {
        let decl = spec.array(arr);
        ms.alloc_array(
            scratch_id(arr),
            decl.len,
            decl.elem,
            PlacementPolicy::RoundRobin,
        );
        image.register(scratch_id(arr), decl.len);
    }

    let mut accum = Accum::new(procs as usize);
    let mut sched = make_sched(spec.schedule, spec.iters, procs, &cfg);
    let mut exec = Executor::new(
        &cfg,
        &mut ms,
        &mut image,
        vec![spec.body.clone(); procs as usize],
        sched.as_mut(),
    )
    .route_privatized(true);
    for &arr in &priv_arrays {
        for p in 0..procs {
            exec = exec.track_copy_out(private_copy_id(arr, ProcId(p)), arr);
        }
    }
    let summary = exec.run();
    assert_eq!(summary.end, ExecEnd::Completed, "ideal run cannot fail");
    accum.absorb(&summary);

    copy_out_phase(
        spec,
        &cfg,
        &mut ms,
        &mut image,
        &mut accum,
        &live_priv,
        &summary.winners,
        true,
    );

    RunResult {
        scenario: Scenario::Ideal,
        name: spec.name.clone(),
        total_cycles: accum.now,
        breakdown: accum.average(),
        passed: None,
        failure: None,
        iterations: summary.iterations,
        final_image: image,
        stats: ms.stats().clone(),
        net: ms.net_summary(),
        trace: ms.take_event_trace(),
    }
}

// ----------------------------------------------------------------------
// Shared phases
// ----------------------------------------------------------------------

/// Runs a copy loop `dst[off+e] = src[off+e]` over `len` elements in
/// parallel.
fn copy_phase(
    cfg: &MachineConfig,
    ms: &mut MemSystem,
    image: &mut MemoryImage,
    accum: &mut Accum,
    src: ArrayId,
    dst: ArrayId,
    region: (u64, u64),
) {
    let (off, len) = region;
    let procs = ms.procs();
    let body = copy_body_region(src, dst, off);
    let mut sched = StaticChunked::new(len, procs, cfg.sched_static_overhead);
    let summary = Executor::new(cfg, ms, image, vec![body; procs as usize], &mut sched)
        .starting_at(accum.now)
        .run();
    assert_eq!(summary.end, ExecEnd::Completed);
    accum.absorb(&summary);
}

/// The backup phase. Densely-backed arrays are copied up front; sparsely-
/// backed arrays (§2.2.1's save-on-first-write) cost nothing here — the
/// hardware/software saves each element's old value alongside its first
/// write, which our model folds into the write itself — and are captured
/// functionally for the restore path.
///
/// Returns `(dense arrays, sparse arrays, functional snapshot of sparse)`.
fn backup_phase(
    spec: &LoopSpec,
    cfg: &MachineConfig,
    ms: &mut MemSystem,
    image: &mut MemoryImage,
    accum: &mut Accum,
) -> (Vec<ArrayId>, Vec<ArrayId>, ArrayBackup) {
    let _prof = specrt_prof::scope("machine.backup");
    let mut dense = Vec::new();
    let mut sparse = Vec::new();
    for arr in spec.backup_arrays() {
        if spec.array(arr).sparse_backup {
            sparse.push(arr);
        } else {
            dense.push(arr);
        }
    }
    for &arr in &dense {
        let decl = spec.array(arr);
        copy_phase(
            cfg,
            ms,
            image,
            accum,
            arr,
            backup_id(arr),
            decl.backup_elems(),
        );
    }
    let snapshot = image.snapshot(&sparse);
    (dense, sparse, snapshot)
}

/// The restore phase: dense arrays copy their backup region back; sparse
/// arrays restore only the elements that were actually written (counts
/// taken from the executor's write tracking).
#[allow(clippy::too_many_arguments)]
fn restore_phase(
    spec: &LoopSpec,
    cfg: &MachineConfig,
    ms: &mut MemSystem,
    image: &mut MemoryImage,
    accum: &mut Accum,
    dense: &[ArrayId],
    sparse_counts: &[(ArrayId, u64)],
    sparse_snapshot: &ArrayBackup,
) {
    let _prof = specrt_prof::scope("machine.restore");
    for &arr in dense {
        let decl = spec.array(arr);
        copy_phase(
            cfg,
            ms,
            image,
            accum,
            backup_id(arr),
            arr,
            decl.backup_elems(),
        );
    }
    for &(arr, count) in sparse_counts {
        if count > 0 {
            // Timing: copy `count` saved elements back; functionally the
            // snapshot below reinstates the exact old values.
            copy_phase(cfg, ms, image, accum, backup_id(arr), arr, (0, count));
        }
    }
    image.restore(sparse_snapshot);
}

/// Elements of `arr` recorded as written in the executor's tracking map.
fn written_count(
    winners: &std::collections::BTreeMap<(ArrayId, u64), (u64, Scalar)>,
    arr: ArrayId,
) -> u64 {
    winners.keys().filter(|(a, _)| *a == arr).count() as u64
}

/// Merges one window's last-writer map into the run's accumulated one:
/// the higher stamp (`iteration + 1`) wins. Windows partition the
/// iteration space, so two windows can never record the *same* stamp for
/// the same `(array, element)` — the `>=` tiebreak only fires when a map
/// is merged over itself (idempotence), never to pick between distinct
/// writes. Together with `BTreeMap`'s fixed iteration order this makes
/// the merge order-independent: no window arrival order, host hash seed,
/// or `--jobs` schedule can leak into verdicts, stats, or images (pinned
/// by `winner_merge_tests`).
fn merge_winners(
    into: &mut std::collections::BTreeMap<(ArrayId, u64), (u64, Scalar)>,
    from: &std::collections::BTreeMap<(ArrayId, u64), (u64, Scalar)>,
) {
    for (k, v) in from {
        let e = into.entry(*k).or_insert(*v);
        if v.0 >= e.0 {
            *e = *v;
        }
    }
}

/// The copy-out phase: timed as a parallel copy of each live privatized
/// array; functionally, the tracked last-writer values are applied.
#[allow(clippy::too_many_arguments)]
fn copy_out_phase(
    spec: &LoopSpec,
    cfg: &MachineConfig,
    ms: &mut MemSystem,
    image: &mut MemoryImage,
    accum: &mut Accum,
    live_priv: &[ArrayId],
    winners: &std::collections::BTreeMap<(ArrayId, u64), (u64, Scalar)>,
    hw_private_src: bool,
) {
    let _prof = specrt_prof::scope("machine.copy_out");
    for &arr in live_priv {
        let decl = spec.array(arr);
        // Timing: each processor copies its slice from its own private copy
        // into a scratch array with the same distribution as the original;
        // functionally the last-writer values are applied below, so the
        // scratch contents are snapshot-restored.
        let snapshot = image.contents(scratch_id(arr));
        let src = if hw_private_src {
            private_copy_id(arr, ProcId(0))
        } else {
            sw_private_copy_id(arr, ProcId(0))
        };
        copy_phase(cfg, ms, image, accum, src, scratch_id(arr), (0, decl.len));
        image.set_contents(scratch_id(arr), snapshot);
        for (&(warr, idx), &(_, value)) in winners {
            if warr == arr {
                image.write(arr, idx, value);
            }
        }
    }
}

/// Registers backup and scratch allocations used by the speculative
/// scenarios. Returns `(backup arrays, live privatized arrays)`.
fn setup_speculative_storage(
    spec: &LoopSpec,
    ms: &mut MemSystem,
    image: &mut MemoryImage,
) -> (Vec<ArrayId>, Vec<ArrayId>) {
    let _prof = specrt_prof::scope("machine.setup");
    let backups = spec.backup_arrays();
    for &arr in &backups {
        let decl = spec.array(arr);
        ms.alloc_array(
            backup_id(arr),
            decl.len,
            decl.elem,
            PlacementPolicy::RoundRobin,
        );
        image.register(backup_id(arr), decl.len);
    }
    let live_priv: Vec<ArrayId> = spec
        .live_after
        .iter()
        .copied()
        .filter(|&a| spec.plan.kind_of(a).is_privatized())
        .collect();
    for &arr in &live_priv {
        let decl = spec.array(arr);
        ms.alloc_array(
            scratch_id(arr),
            decl.len,
            decl.elem,
            PlacementPolicy::RoundRobin,
        );
        image.register(scratch_id(arr), decl.len);
    }
    (backups, live_priv)
}

// ----------------------------------------------------------------------
// HW
// ----------------------------------------------------------------------

/// A resumable prefix snapshotted at a window barrier: the first iteration
/// the rerun must execute, the committed memory image, the accumulated
/// last-writer map, and the iterations completed so far.
type Checkpoint = (
    u64,
    MemoryImage,
    std::collections::BTreeMap<(ArrayId, u64), (u64, Scalar)>,
    u64,
);

/// Checkpoint ring depth: recovery restores the most recent entry; older
/// entries are bounded so a long loop cannot accumulate unbounded snapshot
/// state.
const CKPT_RING: usize = 4;

/// What a successful checkpoint rerun hands back to `run_hw`: finish time,
/// per-processor breakdowns, final image, last-writer map, iterations run,
/// and the rerun machine's protocol statistics.
type CkptRerun = (
    Cycles,
    Vec<TimeBreakdown>,
    MemoryImage,
    std::collections::BTreeMap<(ArrayId, u64), (u64, Scalar)>,
    u64,
    StatSet,
);

/// Re-runs the lost iterations `[start, spec.iters)` speculatively on a
/// fresh `survivors`-processor machine seeded from the committed checkpoint
/// image. The suspected node is fenced out and the survivors restart on a
/// fault-free interconnect — re-injecting the same deterministic node fault
/// would kill every recovery attempt (DESIGN.md §16 records the
/// simplification). Returns `None` when the rerun fails again (a
/// deterministic dependence violation in the suffix); the caller then
/// re-executes the same suffix serially.
fn checkpoint_rerun(
    spec: &LoopSpec,
    restored: &MemoryImage,
    start: u64,
    mut cfg: MachineConfig,
    survivors: u32,
) -> Option<CkptRerun> {
    let _prof = specrt_prof::scope("machine.ckpt_rerun");
    cfg.mem.procs = survivors;
    cfg.mem.net.faults = FaultConfig::none();
    cfg.trace_capacity = 0;
    let mut ms = crate::pool::lease(cfg.mem);
    let mut image = MemoryImage::new();
    for a in &spec.arrays {
        ms.alloc_array(a.id, a.len, a.elem, PlacementPolicy::RoundRobin);
        image.register_with(a.id, restored.contents(a.id));
    }
    ms.alloc_array(
        crate::exec::BARRIER_ARRAY,
        2,
        ElemSize::W8,
        PlacementPolicy::Local(NodeId(0)),
    );
    image.register(crate::exec::BARRIER_ARRAY, 2);
    let priv_arrays = spec.plan.priv_arrays();
    for &arr in &priv_arrays {
        for p in 0..survivors {
            image.register(private_copy_id(arr, ProcId(p)), spec.array(arr).len);
        }
    }
    ms.configure_loop(spec.plan.clone(), spec.numbering);
    // Stamps restart relative to the checkpoint, exactly as the original
    // machine's window barrier would have left them.
    ms.reset_stamp_window(start);
    let sparse: Vec<ArrayId> = spec
        .backup_arrays()
        .into_iter()
        .filter(|&a| spec.array(a).sparse_backup)
        .collect();
    let inner = make_sched(spec.schedule, spec.iters - start, survivors, &cfg);
    let mut sched = crate::sched::Windowed::new(inner, start);
    let mut exec = Executor::new(
        &cfg,
        &mut ms,
        &mut image,
        vec![spec.body.clone(); survivors as usize],
        &mut sched,
    )
    .route_privatized(true)
    .speculative(true);
    for &arr in &priv_arrays {
        for p in 0..survivors {
            exec = exec.track_copy_out(private_copy_id(arr, ProcId(p)), arr);
        }
    }
    for &arr in &sparse {
        exec = exec.track_copy_out(arr, arr);
    }
    let summary = exec.run();
    ms.drain_all_messages();
    if matches!(summary.end, ExecEnd::Completed) {
        ms.merge_dirty_tags(summary.finish_time);
    }
    if !matches!(summary.end, ExecEnd::Completed) || ms.failure().is_some() {
        return None;
    }
    let stats = ms.stats().clone();
    Some((
        summary.finish_time,
        summary.per_proc,
        image,
        summary.winners,
        summary.iterations,
        stats,
    ))
}

fn run_hw(spec: &LoopSpec, cfg: MachineConfig) -> RunResult {
    let procs = cfg.procs();
    let mut ms = crate::pool::lease(cfg.mem);
    if cfg.trace_capacity > 0 {
        ms.enable_event_trace(cfg.trace_capacity);
        ms.set_net_trace(cfg.trace_net);
    }
    let mut image = MemoryImage::new();
    setup_arrays(spec, &mut ms, &mut image, false);
    let (_backups, live_priv) = setup_speculative_storage(spec, &mut ms, &mut image);
    let mut accum = Accum::new(procs as usize);

    // Phase 1: backup.
    let (dense, sparse, sparse_snapshot) =
        backup_phase(spec, &cfg, &mut ms, &mut image, &mut accum);

    let priv_arrays = spec.plan.priv_arrays();
    for &arr in &priv_arrays {
        for p in 0..procs {
            image.register(private_copy_id(arr, ProcId(p)), spec.array(arr).len);
        }
    }
    // §3.3: if the stamps would overflow, run the loop in windows separated
    // by all-processor synchronizations that reset the stamps.
    let window = spec
        .stamp_window
        .filter(|_| !priv_arrays.is_empty())
        .unwrap_or(spec.iters)
        .max(1);
    // Checkpoint cadence: under CheckpointRestart the loop always runs in
    // windows of at most `every_iters`, so a window barrier — the quiescent
    // point a checkpoint snapshots — occurs at least that often.
    let ckpt_every = match cfg.recovery {
        RecoveryPolicy::CheckpointRestart { checkpoint } => Some(checkpoint.every_iters.max(1)),
        _ => None,
    };
    let window = ckpt_every.map_or(window, |every| window.min(every));
    let mut ckpts: Vec<Checkpoint> = Vec::new();
    // Pre-loop image, kept only to model the injected stale-snapshot bug
    // (the checkpoint analogue of forgetting to merge dirty-line tags).
    let stale_image = (ckpt_every.is_some()
        && fault::active(fault::FaultKind::CkptSkipDirtySnapshot))
    .then(|| image.clone());

    // Speculative attempts: the paper's policy (SerialReexec) runs the loop
    // once and falls straight back to serial re-execution on failure;
    // RetrySpeculative restores the backups and re-runs the loop
    // speculatively up to `retries` more times first — a transient failure
    // (a lost message escalated by the watchdog) need not repeat, while a
    // deterministic dependence violation burns the attempts and lands in
    // the same serial safety net.
    let retries = cfg.recovery.retries();
    let mut attempt: u32 = 0;
    let (failed, iterations, winners, stats) = loop {
        // Phase 2: the speculative loop under the protocol extensions.
        ms.configure_loop(spec.plan.clone(), spec.numbering);
        let mut iterations = 0u64;
        let mut winners: std::collections::BTreeMap<(ArrayId, u64), (u64, Scalar)> =
            std::collections::BTreeMap::new();
        let mut loop_end = ExecEnd::Completed;
        let mut start = 0u64;
        while start < spec.iters {
            let len = window.min(spec.iters - start);
            if start > 0 {
                // Synchronization point: all in-flight protocol messages
                // land, the stamps reset, and a barrier separates the
                // windows.
                ms.drain_all_messages();
                if let Some((reason, at)) = ms.failure() {
                    loop_end = ExecEnd::Failed { reason, at };
                    break;
                }
                // Window-flushed verdict: a conflict hidden on a dirty line
                // must surface *before* the prefix is declared committed
                // (and snapshotted) — the same merge the loop-end verdict
                // does, at every barrier.
                ms.merge_dirty_tags(accum.now);
                if let Some((reason, at)) = ms.failure() {
                    loop_end = ExecEnd::Failed { reason, at };
                    break;
                }
                ms.reset_stamp_window(start);
                // Partial commit (§3.3): fold the accumulated last-writer
                // values of the privatized arrays into the shared image.
                // The stamp reset wipes the private directories, so the
                // next window's read-ins go back to shared memory — which
                // must hold every value the committed prefix wrote, or a
                // processor re-reads-in stale data over its own
                // earlier-window private write.
                for (&(arr, idx), &(_, value)) in &winners {
                    image.write(arr, idx, value);
                }
                accum.now += Cycles(cfg.barrier_overhead);
                if ckpt_every.is_some() {
                    // Snapshot the committed prefix (the winner values are
                    // already folded into the image at this barrier), the
                    // winner map, and the iteration count. The injected
                    // `CkptSkipDirtySnapshot` bug records the pre-loop
                    // image instead; the campaign's serial-oracle image
                    // check must flag the stale rollback it causes.
                    let snap = match &stale_image {
                        Some(stale) => stale.clone(),
                        None => image.clone(),
                    };
                    if ckpts.len() == CKPT_RING {
                        ckpts.remove(0);
                    }
                    ckpts.push((start, snap, winners.clone(), iterations));
                    ms.incr_stat("checkpoint.snapshots");
                    // Committing the snapshot to safe storage costs one
                    // more barrier episode on top of the window barrier.
                    accum.now += Cycles(cfg.barrier_overhead);
                }
            }
            let inner = make_sched(spec.schedule, len, procs, &cfg);
            let mut sched = crate::sched::Windowed::new(inner, start);
            let mut exec = Executor::new(
                &cfg,
                &mut ms,
                &mut image,
                vec![spec.body.clone(); procs as usize],
                &mut sched,
            )
            .route_privatized(true)
            .speculative(true)
            .starting_at(accum.now);
            for &arr in &priv_arrays {
                for p in 0..procs {
                    exec = exec.track_copy_out(private_copy_id(arr, ProcId(p)), arr);
                }
            }
            for &arr in &sparse {
                exec = exec.track_copy_out(arr, arr);
            }
            let summary = exec.run();
            accum.absorb(&summary);
            iterations += summary.iterations;
            merge_winners(&mut winners, &summary.winners);
            if let ExecEnd::Failed { reason, at } = summary.end {
                loop_end = ExecEnd::Failed { reason, at };
                break;
            }
            start += len;
        }
        ms.drain_all_messages();
        // Quiescent point: every protocol message has landed; the directory
        // and cache views must agree before the verdict is read.
        #[cfg(debug_assertions)]
        ms.assert_invariants();
        // Flushed-verdict semantics (paper §4, flush-after-every-loop): a
        // dirty line's locally accumulated access bits never reached the
        // directory, so a conflict hidden by a silent dirty-hit write could
        // escape a drain-point-only verdict. Merge them (state-only, no
        // eviction, no timing charge) before reading the verdict. A run
        // that already failed promptly skips the merge — its verdict is
        // settled and the failure state must not be perturbed.
        if matches!(loop_end, ExecEnd::Completed) {
            ms.merge_dirty_tags(accum.now);
        }

        let late_failure = match (&loop_end, ms.failure()) {
            (ExecEnd::Completed, Some((reason, at))) => Some((reason, at.max(accum.now))),
            _ => None,
        };
        let failed = match (&loop_end, late_failure) {
            (ExecEnd::Failed { reason, .. }, _) => Some(*reason),
            (_, Some((reason, at))) => {
                accum.now = accum.now.max(at + Cycles(cfg.abort_latency));
                Some(reason)
            }
            _ => None,
        };

        let stats = ms.stats().clone();
        // Post-loop phases (restore / copy-out / serial fallback) run under
        // plain coherence.
        ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());

        match failed {
            None => break (None, iterations, winners, stats),
            Some(reason) if attempt >= retries => break (Some(reason), iterations, winners, stats),
            Some(_) => {}
        }
        // Retry path: restore the backups (costed like any abort), re-arm
        // the speculation hardware, and go around again.
        attempt += 1;
        let sparse_counts: Vec<(ArrayId, u64)> = sparse
            .iter()
            .map(|&a| (a, written_count(&winners, a)))
            .collect();
        restore_phase(
            spec,
            &cfg,
            &mut ms,
            &mut image,
            &mut accum,
            &dense,
            &sparse_counts,
            &sparse_snapshot,
        );
        // Private copies restart clean, exactly as a fresh loop entry would
        // see them (their read-in/copy-out decisions were wiped with the
        // access bits).
        for &arr in &priv_arrays {
            for p in 0..procs {
                let len = spec.array(arr).len as usize;
                image.set_contents(private_copy_id(arr, ProcId(p)), vec![Scalar::ZERO; len]);
            }
        }
        ms.reset_speculation();
        if ms.tracer().enabled() {
            let at = accum.now;
            ms.tracer_mut().emit(TraceEvent::Recovery {
                at,
                action: "retry-speculative",
                attempt,
            });
        }
    };

    if let Some(reason) = failed {
        // Checkpoint restart: roll back to the last window checkpoint and
        // re-run only the lost iterations — on the survivors when a node
        // was declared unreachable (its remaining chunk is redistributed by
        // the fresh schedule over `survivors` processors). The serial
        // safety net only runs when no checkpoint precedes the failure, or
        // when the rerun fails again — and then only over the lost suffix.
        if let Some((ck_start, ck_image, ck_winners, ck_iters)) = ckpts.pop() {
            if ms.tracer().enabled() {
                let at = accum.now;
                ms.tracer_mut().emit(TraceEvent::Recovery {
                    at,
                    action: "checkpoint-restart",
                    attempt: attempt + 1,
                });
            }
            ms.incr_stat("checkpoint.restores");
            // Timed rollback: the same restore traffic any abort pays;
            // functionally the checkpoint image then replaces the
            // speculative one wholesale.
            let sparse_counts: Vec<(ArrayId, u64)> = sparse
                .iter()
                .map(|&a| (a, written_count(&winners, a)))
                .collect();
            restore_phase(
                spec,
                &cfg,
                &mut ms,
                &mut image,
                &mut accum,
                &dense,
                &sparse_counts,
                &sparse_snapshot,
            );
            image = ck_image;
            let survivors = match reason {
                FailReason::NodeUnreachable { .. } => procs.saturating_sub(1).max(1),
                _ => procs,
            };
            match checkpoint_rerun(spec, &image, ck_start, cfg, survivors) {
                Some((
                    rerun_time,
                    rerun_bds,
                    rerun_image,
                    rerun_winners,
                    rerun_iters,
                    rerun_stats,
                )) => {
                    accum.now += rerun_time;
                    for (bd, rb) in accum.per_proc.iter_mut().zip(&rerun_bds) {
                        *bd = bd.merged(rb);
                    }
                    for a in &spec.arrays {
                        image.set_contents(a.id, rerun_image.contents(a.id));
                    }
                    let mut all_winners = ck_winners;
                    merge_winners(&mut all_winners, &rerun_winners);
                    let mut stats = ms.stats().clone();
                    stats.merge(&rerun_stats);
                    copy_out_phase(
                        spec,
                        &cfg,
                        &mut ms,
                        &mut image,
                        &mut accum,
                        &live_priv,
                        &all_winners,
                        true,
                    );
                    return RunResult {
                        scenario: Scenario::Hw,
                        name: spec.name.clone(),
                        total_cycles: accum.now,
                        breakdown: accum.average(),
                        passed: Some(true),
                        failure: None,
                        iterations: ck_iters + rerun_iters,
                        final_image: image,
                        stats,
                        net: ms.net_summary(),
                        trace: ms.take_event_trace(),
                    };
                }
                None => {
                    // The rerun failed again (a deterministic dependence
                    // violation in the suffix): serial re-execution, but
                    // only of the iterations the checkpoint does not cover.
                    ms.incr_stat("checkpoint.serial_fallbacks");
                    if ms.tracer().enabled() {
                        let at = accum.now;
                        ms.tracer_mut().emit(TraceEvent::Recovery {
                            at,
                            action: "serial-reexec",
                            attempt: attempt + 1,
                        });
                    }
                    let (serial_time, serial_bd, serial_image) =
                        serial_reexec_from(spec, &image, ck_start, cfg);
                    accum.now += serial_time;
                    for bd in &mut accum.per_proc {
                        *bd = bd.merged(&serial_bd);
                    }
                    for a in &spec.arrays {
                        image.set_contents(a.id, serial_image.contents(a.id));
                    }
                    let stats = ms.stats().clone();
                    return RunResult {
                        scenario: Scenario::Hw,
                        name: spec.name.clone(),
                        total_cycles: accum.now,
                        breakdown: accum.average(),
                        passed: Some(false),
                        failure: Some(reason.to_string()),
                        iterations,
                        final_image: image,
                        stats,
                        net: ms.net_summary(),
                        trace: ms.take_event_trace(),
                    };
                }
            }
        }
        // Failure path: restore + serial re-execution.
        // The Recovery event is only emitted under the non-default recovery
        // policies: the paper's SerialReexec baseline must stay
        // byte-identical to the pre-resilience golden traces.
        if !matches!(cfg.recovery, RecoveryPolicy::SerialReexec) && ms.tracer().enabled() {
            let at = accum.now;
            ms.tracer_mut().emit(TraceEvent::Recovery {
                at,
                action: "serial-reexec",
                attempt,
            });
        }
        let sparse_counts: Vec<(ArrayId, u64)> = sparse
            .iter()
            .map(|&a| (a, written_count(&winners, a)))
            .collect();
        restore_phase(
            spec,
            &cfg,
            &mut ms,
            &mut image,
            &mut accum,
            &dense,
            &sparse_counts,
            &sparse_snapshot,
        );
        let (serial_time, serial_bd, serial_image) = serial_reexec(spec, &image, cfg);
        accum.now += serial_time;
        // The serial portion is wall-clock for the whole machine: fold it
        // into every processor so the averaged breakdown reflects it fully.
        for bd in &mut accum.per_proc {
            *bd = bd.merged(&serial_bd);
        }
        for a in &spec.arrays {
            image.set_contents(a.id, serial_image.contents(a.id));
        }
        return RunResult {
            scenario: Scenario::Hw,
            name: spec.name.clone(),
            total_cycles: accum.now,
            breakdown: accum.average(),
            passed: Some(false),
            failure: Some(reason.to_string()),
            iterations,
            final_image: image,
            stats,
            net: ms.net_summary(),
            trace: ms.take_event_trace(),
        };
    }

    // Success path: copy-out.
    copy_out_phase(
        spec, &cfg, &mut ms, &mut image, &mut accum, &live_priv, &winners, true,
    );

    RunResult {
        scenario: Scenario::Hw,
        name: spec.name.clone(),
        total_cycles: accum.now,
        breakdown: accum.average(),
        passed: Some(true),
        failure: None,
        iterations,
        final_image: image,
        stats,
        net: ms.net_summary(),
        trace: ms.take_event_trace(),
    }
}

// ----------------------------------------------------------------------
// SW
// ----------------------------------------------------------------------

fn run_sw(spec: &LoopSpec, cfg: MachineConfig, variant: SwVariant) -> RunResult {
    let procs = cfg.procs();
    let mut ms = crate::pool::lease(cfg.mem);
    if cfg.trace_capacity > 0 {
        ms.enable_event_trace(cfg.trace_capacity);
        ms.set_net_trace(cfg.trace_net);
    }
    let mut image = MemoryImage::new();
    setup_arrays(spec, &mut ms, &mut image, false);
    let (_backups, live_priv) = setup_speculative_storage(spec, &mut ms, &mut image);
    let mut accum = Accum::new(procs as usize);

    let tested: Vec<(ArrayId, ProtocolKind)> = spec.plan.arrays_under_test().collect();
    let priv_arrays = spec.plan.priv_arrays();
    // Processor-wise shadows are 1-bit-per-element bitmaps (§2.2.3),
    // manipulated 64 elements per word; iteration-wise shadows are 4-byte
    // stamp arrays.
    let bitmap = variant == SwVariant::ProcessorWise;

    // Allocate shadow arrays (node-local) and counters, plus software
    // private copies of privatized arrays.
    for &(arr, _) in &tested {
        let len = spec.array(arr).len;
        for p in 0..procs {
            let ids = ShadowIds::new(arr, ProcId(p));
            if bitmap {
                let words = len.div_ceil(64);
                for sid in [ids.w_last(), ids.r_cur(), ids.np()] {
                    ms.alloc_array(sid, words, ElemSize::W8, PlacementPolicy::Local(NodeId(p)));
                    image.register(sid, words);
                }
            } else {
                for sid in ids.data_shadows() {
                    ms.alloc_array(sid, len, ElemSize::W4, PlacementPolicy::Local(NodeId(p)));
                    image.register(sid, len);
                }
            }
            ms.alloc_array(
                ids.counters(),
                CNT_LEN,
                ElemSize::W8,
                PlacementPolicy::Local(NodeId(p)),
            );
            image.register(ids.counters(), CNT_LEN);
        }
        // Global reduction flags (read by processor 0's final reduction).
        ms.alloc_array(
            reduce_id(arr),
            CNT_LEN,
            ElemSize::W8,
            PlacementPolicy::Local(NodeId(0)),
        );
        image.register(reduce_id(arr), CNT_LEN);
    }
    for &arr in &priv_arrays {
        let decl = spec.array(arr);
        for p in 0..procs {
            ms.alloc_array(
                sw_private_copy_id(arr, ProcId(p)),
                decl.len,
                decl.elem,
                PlacementPolicy::Local(NodeId(p)),
            );
            image.register(sw_private_copy_id(arr, ProcId(p)), decl.len);
        }
    }
    ms.configure_loop(TestPlan::new(), IterationNumbering::iteration_wise());

    // Phase 1: backup.
    let (dense, sparse, sparse_snapshot) =
        backup_phase(spec, &cfg, &mut ms, &mut image, &mut accum);

    // Phase 2: shadow zero-out (each processor clears its own shadows;
    // bitmap shadows clear 64 elements per store).
    for &(arr, _) in &tested {
        let len = spec.array(arr).len;
        let units = if bitmap { len.div_ceil(64) } else { len };
        let programs: Vec<Program> = (0..procs)
            .map(|p| {
                let ids = ShadowIds::new(arr, ProcId(p));
                if bitmap {
                    zero_shadow_body_bitmap(&ids)
                } else {
                    zero_shadow_body(&ids)
                }
            })
            .collect();
        let mut sched = Replicated::new(units, procs, cfg.sched_static_overhead);
        let summary = Executor::new(&cfg, &mut ms, &mut image, programs, &mut sched)
            .starting_at(accum.now)
            .run();
        assert_eq!(summary.end, ExecEnd::Completed);
        accum.absorb(&summary);
    }

    // Phase 3: the marking loop.
    let (numbering, schedule) = match variant {
        SwVariant::IterationWise => (spec.numbering, spec.schedule),
        SwVariant::ProcessorWise => (
            IterationNumbering::processor_wise(spec.iters, procs),
            ScheduleKind::Static,
        ),
    };
    let icfg = InstrumentConfig {
        plan: spec.plan.clone(),
        numbering,
        bitmap,
    };
    let programs: Vec<Program> = (0..procs)
        .map(|p| instrument_for_proc(&spec.body, &icfg, ProcId(p)))
        .collect();
    let mut sched = make_sched(schedule, spec.iters, procs, &cfg);
    let mut exec =
        Executor::new(&cfg, &mut ms, &mut image, programs, sched.as_mut()).starting_at(accum.now);
    for &arr in &priv_arrays {
        for p in 0..procs {
            exec = exec.track_copy_out(sw_private_copy_id(arr, ProcId(p)), arr);
        }
    }
    for &arr in &sparse {
        exec = exec.track_copy_out(arr, arr);
    }
    let summary = exec.run();
    assert_eq!(
        summary.end,
        ExecEnd::Completed,
        "SW marking loop runs to completion"
    );
    accum.absorb(&summary);

    // Phase 4: merging + analysis (word-granular for bitmap shadows).
    for &(arr, _) in &tested {
        let len = spec.array(arr).len;
        let units = if bitmap { len.div_ceil(64) } else { len };
        let all: Vec<ShadowIds> = (0..procs).map(|p| ShadowIds::new(arr, ProcId(p))).collect();
        let programs: Vec<Program> = (0..procs)
            .map(|p| {
                if bitmap {
                    merge_analysis_body_bitmap(&all, ProcId(p))
                } else {
                    merge_analysis_body(&all, ProcId(p))
                }
            })
            .collect();
        let mut sched = StaticChunked::new(units, procs, cfg.sched_static_overhead);
        let summary = Executor::new(&cfg, &mut ms, &mut image, programs, &mut sched)
            .starting_at(accum.now)
            .run();
        assert_eq!(summary.end, ExecEnd::Completed);
        accum.absorb(&summary);
    }

    // Phase 5: the final reduction over the per-processor counters, run
    // serially on processor 0 (one remote counter line per processor).
    for &(arr, _) in &tested {
        let all: Vec<ShadowIds> = (0..procs).map(|p| ShadowIds::new(arr, ProcId(p))).collect();
        let body = reduction_body(&all, reduce_id(arr), bitmap);
        let mut sched = crate::sched::SingleProc::new(procs as u64, cfg.sched_static_overhead);
        let summary = Executor::new(
            &cfg,
            &mut ms,
            &mut image,
            vec![body; procs as usize],
            &mut sched,
        )
        .starting_at(accum.now)
        .run();
        assert_eq!(summary.end, ExecEnd::Completed);
        accum.absorb(&summary);
    }
    // The verdict is read from the simulated machine's reduction output.
    let mut verdicts = Vec::new();
    for &(arr, kind) in &tested {
        let g = reduce_id(arr);
        let atw = image.read(g, CNT_ATW).as_int();
        let slot1 = image.read(g, CNT_ATM).as_int();
        let bad_wr = image.read(g, CNT_BAD_WR).as_int() != 0;
        let bad_np = image.read(g, CNT_BAD_NP).as_int() != 0;
        // Test (c): no element written by two (super)iterations — expressed
        // as `Atw == Atm` for stamps, or directly as the absence of a
        // multi-writer overlap for bitmaps.
        let single_writers = if bitmap { slot1 == 0 } else { atw == slot1 };
        let ok = if bad_wr {
            false
        } else if single_writers {
            true
        } else if kind.is_privatized() {
            !bad_np
        } else {
            false
        };
        verdicts.push((arr, ok));
    }
    let passed = verdicts.iter().all(|&(_, ok)| ok);

    let stats = ms.stats().clone();
    if !passed {
        let failing: Vec<String> = verdicts
            .iter()
            .filter(|&&(_, ok)| !ok)
            .map(|&(a, _)| a.to_string())
            .collect();
        let sparse_counts: Vec<(ArrayId, u64)> = sparse
            .iter()
            .map(|&a| (a, written_count(&summary.winners, a)))
            .collect();
        restore_phase(
            spec,
            &cfg,
            &mut ms,
            &mut image,
            &mut accum,
            &dense,
            &sparse_counts,
            &sparse_snapshot,
        );
        let (serial_time, serial_bd, serial_image) = serial_reexec(spec, &image, cfg);
        accum.now += serial_time;
        for bd in &mut accum.per_proc {
            *bd = bd.merged(&serial_bd);
        }
        for a in &spec.arrays {
            image.set_contents(a.id, serial_image.contents(a.id));
        }
        return RunResult {
            scenario: Scenario::Sw(variant),
            name: spec.name.clone(),
            total_cycles: accum.now,
            breakdown: accum.average(),
            passed: Some(false),
            failure: Some(format!("LRPD test failed for {}", failing.join(", "))),
            iterations: summary.iterations,
            final_image: image,
            stats,
            net: ms.net_summary(),
            trace: ms.take_event_trace(),
        };
    }

    // Success path: copy-out.
    copy_out_phase(
        spec,
        &cfg,
        &mut ms,
        &mut image,
        &mut accum,
        &live_priv,
        &summary.winners,
        false,
    );

    RunResult {
        scenario: Scenario::Sw(variant),
        name: spec.name.clone(),
        total_cycles: accum.now,
        breakdown: accum.average(),
        passed: Some(true),
        failure: None,
        iterations: summary.iterations,
        final_image: image,
        stats,
        net: ms.net_summary(),
        trace: ms.take_event_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopspec::ArrayDecl;
    use specrt_ir::{BinOp, Operand, ProgramBuilder};

    const A: ArrayId = ArrayId(0);
    const K: ArrayId = ArrayId(1);
    const OUT: ArrayId = ArrayId(2);

    /// Pins the determinism contract of [`merge_winners`]: the
    /// accumulated last-writer map must not depend on the order windows
    /// are merged in, and merging a window over itself must be a no-op —
    /// so no arrival order, host hash seed, or `--jobs` schedule can
    /// leak into verdicts, stats, or final images.
    mod winner_merge_tests {
        use super::super::merge_winners;
        use specrt_ir::ArrayId;
        use specrt_ir::Scalar;
        use std::collections::BTreeMap;

        type Winners = BTreeMap<(ArrayId, u64), (u64, Scalar)>;
        type Entry = ((u32, u64), (u64, i64));

        fn window(entries: &[Entry]) -> Winners {
            entries
                .iter()
                .map(|&((a, e), (stamp, v))| ((ArrayId(a), e), (stamp, Scalar::Int(v))))
                .collect()
        }

        #[test]
        fn merge_is_order_independent() {
            // Three windows over disjoint stamp ranges (as real windows
            // are), with overlapping element sets.
            let w1 = window(&[((0, 0), (1, 10)), ((0, 1), (2, 11))]);
            let w2 = window(&[((0, 0), (4, 20)), ((1, 3), (3, 21))]);
            let w3 = window(&[((0, 1), (6, 30)), ((1, 3), (5, 31))]);
            let windows = [&w1, &w2, &w3];
            let orders: &[[usize; 3]] = &[
                [0, 1, 2],
                [0, 2, 1],
                [1, 0, 2],
                [1, 2, 0],
                [2, 0, 1],
                [2, 1, 0],
            ];
            let mut results = orders.iter().map(|order| {
                let mut acc = Winners::new();
                for &i in order {
                    merge_winners(&mut acc, windows[i]);
                }
                acc
            });
            let first = results.next().unwrap();
            assert!(
                results.all(|r| r == first),
                "winner merge must not depend on window order"
            );
            // Highest stamp won everywhere.
            assert_eq!(first[&(ArrayId(0), 0)], (4, Scalar::Int(20)));
            assert_eq!(first[&(ArrayId(0), 1)], (6, Scalar::Int(30)));
            assert_eq!(first[&(ArrayId(1), 3)], (5, Scalar::Int(31)));
        }

        #[test]
        fn merge_is_idempotent() {
            let w = window(&[((0, 0), (3, 7)), ((2, 9), (8, 1))]);
            let mut acc = Winners::new();
            merge_winners(&mut acc, &w);
            let once = acc.clone();
            merge_winners(&mut acc, &w);
            assert_eq!(acc, once, "self-merge must be a no-op");
        }
    }

    /// `A[K[i]] += 1` with K a permutation: parallel without privatization.
    fn permutation_loop(n: u64) -> LoopSpec {
        let mut b = ProgramBuilder::new();
        let idx = b.load(K, Operand::Iter);
        let v = b.load(A, Operand::Reg(idx));
        let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
        b.store(A, Operand::Reg(idx), Operand::Reg(v2));
        b.compute(120);
        let body = b.build().unwrap();
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        // K[i] = (i * 7) mod n is a permutation when gcd(7, n) = 1... we use
        // n a power of two, so it is.
        let k_init: Vec<Scalar> = (0..n).map(|i| Scalar::Int(((i * 7) % n) as i64)).collect();
        let a_init: Vec<Scalar> = (0..n).map(|i| Scalar::Float(i as f64)).collect();
        LoopSpec {
            name: "permutation".into(),
            body,
            iters: n,
            arrays: vec![
                ArrayDecl::with_init(A, ElemSize::W8, a_init),
                ArrayDecl::with_init(K, ElemSize::W8, k_init),
            ],
            plan,
            numbering: IterationNumbering::iteration_wise(),
            schedule: ScheduleKind::Static,
            live_after: vec![A],
            stamp_window: None,
        }
    }

    /// `OUT[i] = A[K[i]]` with A read-only under test. Every element read
    /// that hits a resident *clean* line emits an asynchronous `ROnly`
    /// update — and reads never dirty the lines — so protocol messages
    /// flow across the whole loop, and again on every speculative retry
    /// (the access bits reset, the lines stay clean). That makes this the
    /// workload of choice for node-fault tests: a crash or pause anywhere
    /// in the run reliably swallows some update and arms the watchdog.
    fn gather_loop(n: u64) -> LoopSpec {
        let mut b = ProgramBuilder::new();
        let idx = b.load(K, Operand::Iter);
        let v = b.load(A, Operand::Reg(idx));
        b.store(OUT, Operand::Iter, Operand::Reg(v));
        b.compute(120);
        let body = b.build().unwrap();
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let k_init: Vec<Scalar> = (0..n).map(|i| Scalar::Int(((i * 7) % n) as i64)).collect();
        let a_init: Vec<Scalar> = (0..n).map(|i| Scalar::Float(i as f64)).collect();
        LoopSpec {
            name: "gather".into(),
            body,
            iters: n,
            arrays: vec![
                ArrayDecl::with_init(A, ElemSize::W8, a_init),
                ArrayDecl::with_init(K, ElemSize::W8, k_init),
                ArrayDecl::zeroed(OUT, n, ElemSize::W8),
            ],
            plan,
            numbering: IterationNumbering::iteration_wise(),
            schedule: ScheduleKind::Static,
            live_after: vec![A, OUT],
            stamp_window: None,
        }
    }

    /// All iterations collide on A[0]: not parallel.
    fn colliding_loop(n: u64) -> LoopSpec {
        let mut spec = permutation_loop(n);
        let k_init: Vec<Scalar> = (0..n).map(|_| Scalar::Int(0)).collect();
        spec.arrays[1] = ArrayDecl::with_init(K, ElemSize::W8, k_init);
        spec.name = "colliding".into();
        spec
    }

    /// Workspace loop: every iteration writes then reads A[0..4];
    /// privatizable.
    fn workspace_loop(n: u64) -> LoopSpec {
        let mut b = ProgramBuilder::new();
        for e in 0..4 {
            b.store(A, Operand::ImmI(e), Operand::Iter);
        }
        let mut acc = b.mov(Operand::ImmI(0));
        for e in 0..4 {
            let v = b.load(A, Operand::ImmI(e));
            acc = b.binop(BinOp::Add, Operand::Reg(acc), Operand::Reg(v));
        }
        b.store(K, Operand::Iter, Operand::Reg(acc));
        b.compute(15);
        let body = b.build().unwrap();
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
        );
        LoopSpec {
            name: "workspace".into(),
            body,
            iters: n,
            arrays: vec![
                ArrayDecl::zeroed(A, 4, ElemSize::W8),
                ArrayDecl::zeroed(K, n, ElemSize::W8),
            ],
            plan,
            numbering: IterationNumbering::iteration_wise(),
            schedule: ScheduleKind::Static,
            live_after: vec![],
            stamp_window: None,
        }
    }

    fn check_matches_serial(spec: &LoopSpec, scenario: Scenario, procs: u32) -> RunResult {
        let serial = run_scenario(spec, Scenario::Serial, procs);
        let run = run_scenario(spec, scenario, procs);
        // Privatized arrays that are dead after the loop hold unspecified
        // values; compare only live state.
        let ids: Vec<ArrayId> = spec
            .arrays
            .iter()
            .map(|a| a.id)
            .filter(|&id| !spec.plan.kind_of(id).is_privatized() || spec.live_after.contains(&id))
            .collect();
        assert!(
            run.final_image.same_contents(&serial.final_image, &ids),
            "{scenario} final state differs from serial for {}",
            spec.name
        );
        run
    }

    #[test]
    fn hw_passes_parallel_loop_and_matches_serial() {
        let spec = permutation_loop(64);
        let run = check_matches_serial(&spec, Scenario::Hw, 4);
        assert_eq!(run.passed, Some(true), "{:?}", run.failure);
        assert_eq!(run.iterations, 64);
    }

    #[test]
    fn hw_fails_colliding_loop_and_recovers() {
        let spec = colliding_loop(64);
        let run = check_matches_serial(&spec, Scenario::Hw, 4);
        assert_eq!(run.passed, Some(false));
        assert!(run.failure.is_some());
        assert!(run.iterations < 64, "must abort early");
    }

    #[test]
    fn sw_passes_parallel_loop_and_matches_serial() {
        let spec = permutation_loop(64);
        let run = check_matches_serial(&spec, Scenario::Sw(SwVariant::IterationWise), 4);
        assert_eq!(run.passed, Some(true), "{:?}", run.failure);
    }

    #[test]
    fn sw_fails_colliding_loop_and_recovers() {
        let spec = colliding_loop(64);
        let run = check_matches_serial(&spec, Scenario::Sw(SwVariant::IterationWise), 4);
        assert_eq!(run.passed, Some(false));
        assert_eq!(run.iterations, 64, "SW only learns of failure at the end");
    }

    #[test]
    fn ideal_matches_serial() {
        let spec = permutation_loop(64);
        let run = check_matches_serial(&spec, Scenario::Ideal, 4);
        assert_eq!(run.passed, None);
    }

    #[test]
    fn hw_faster_than_sw_faster_than_serial_on_parallel_loop() {
        let spec = permutation_loop(256);
        let serial = run_scenario(&spec, Scenario::Serial, 4);
        let ideal = run_scenario(&spec, Scenario::Ideal, 4);
        let hw = run_scenario(&spec, Scenario::Hw, 4);
        let sw = run_scenario(&spec, Scenario::Sw(SwVariant::IterationWise), 4);
        assert!(ideal.total_cycles < serial.total_cycles);
        assert!(hw.total_cycles < serial.total_cycles, "HW should speed up");
        assert!(
            hw.total_cycles < sw.total_cycles,
            "HW {} should beat SW {}",
            hw.total_cycles,
            sw.total_cycles
        );
        assert!(ideal.total_cycles <= hw.total_cycles);
        assert!(hw.speedup_over(&serial) > 1.0);
    }

    #[test]
    fn hw_failure_detected_earlier_than_sw() {
        let spec = colliding_loop(128);
        let hw = run_scenario(&spec, Scenario::Hw, 4);
        let sw = run_scenario(&spec, Scenario::Sw(SwVariant::IterationWise), 4);
        assert!(
            hw.total_cycles < sw.total_cycles,
            "early abort must beat run-to-completion: HW {} vs SW {}",
            hw.total_cycles,
            sw.total_cycles
        );
    }

    #[test]
    fn privatized_workspace_passes_hw_and_sw() {
        let spec = workspace_loop(32);
        let hw = check_matches_serial(&spec, Scenario::Hw, 4);
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
        let sw = check_matches_serial(&spec, Scenario::Sw(SwVariant::IterationWise), 4);
        assert_eq!(sw.passed, Some(true), "{:?}", sw.failure);
    }

    #[test]
    fn processor_wise_passes_same_proc_dependences() {
        // Iterations 2k and 2k+1 collide on A[k]; static chunking with 4
        // processors over 32 iterations puts each colliding pair on the
        // same processor, so the processor-wise SW test and the HW test
        // (processor-wise by construction) pass, while the iteration-wise
        // SW test fails.
        let mut b = ProgramBuilder::new();
        let half = b.binop(BinOp::Div, Operand::Iter, Operand::ImmI(2));
        let v = b.load(A, Operand::Reg(half));
        let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::ImmF(1.0));
        b.store(A, Operand::Reg(half), Operand::Reg(v2));
        let body = b.build().unwrap();
        let mut plan = TestPlan::new();
        plan.set(A, ProtocolKind::NonPriv);
        let spec = LoopSpec {
            name: "pairs".into(),
            body,
            iters: 32,
            arrays: vec![ArrayDecl::zeroed(A, 16, ElemSize::W8)],
            plan,
            numbering: IterationNumbering::iteration_wise(),
            schedule: ScheduleKind::Static,
            live_after: vec![A],
            stamp_window: None,
        };
        let pw = run_scenario(&spec, Scenario::Sw(SwVariant::ProcessorWise), 4);
        assert_eq!(pw.passed, Some(true), "{:?}", pw.failure);
        let iw = run_scenario(&spec, Scenario::Sw(SwVariant::IterationWise), 4);
        assert_eq!(iw.passed, Some(false));
        let hw = run_scenario(&spec, Scenario::Hw, 4);
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
    }

    /// A lossy interconnect makes the watchdog abort the first speculative
    /// attempt; `RetrySpeculative` restores the backups, re-runs the loop
    /// (drawing fresh fault decisions), and passes — where the paper's
    /// `SerialReexec` policy falls straight back to serial. Both end on the
    /// serial-equivalent memory image. The drop rate and fault seed are
    /// picked so the first attempt deterministically loses an update
    /// message past the retransmission budget.
    #[test]
    fn retry_policy_recovers_transient_message_loss() {
        use crate::config::RecoveryPolicy;
        use specrt_proto::{FaultConfig, NetConfig};

        let spec = permutation_loop(64);
        let faults = FaultConfig {
            seed: 6,
            drop_ppm: 350_000,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_cycles: 0,
            node_fault: None,
        };
        let mut cfg = MachineConfig::with_procs(4).with_net(NetConfig::flat().with_faults(faults));
        cfg.mem.retry.timeout = 64;
        cfg.mem.retry.max_retries = 1;
        cfg.trace_capacity = 4096;
        let serial = run_scenario_configured(&spec, Scenario::Serial, cfg);

        // Paper policy: the loss escalates into abort + serial fallback.
        let base = run_scenario_configured(&spec, Scenario::Hw, cfg);
        assert_eq!(base.passed, Some(false));
        assert!(
            base.failure.as_deref().unwrap_or("").contains("lost"),
            "expected a message-loss abort, got {:?}",
            base.failure
        );
        assert!(base.final_image.same_contents(&serial.final_image, &[A]));

        // Retry policy: the re-run draws different fault decisions and
        // completes speculatively.
        let retry = run_scenario_configured(
            &spec,
            Scenario::Hw,
            cfg.with_recovery(RecoveryPolicy::RetrySpeculative { max_attempts: 3 }),
        );
        assert_eq!(retry.passed, Some(true), "{:?}", retry.failure);
        assert!(retry.stats.get("retry.speculative_reruns") >= 1);
        assert!(retry.final_image.same_contents(&serial.final_image, &[A]));
        assert!(
            retry.trace.iter().any(|e| matches!(
                e,
                TraceEvent::Recovery {
                    action: "retry-speculative",
                    ..
                }
            )),
            "retry must be visible in the event trace"
        );
    }

    /// A deterministic dependence violation fails every speculative
    /// attempt: `RetrySpeculative` burns its budget, lands in the serial
    /// safety net, and still produces the serial result.
    #[test]
    fn retry_policy_exhausts_on_deterministic_conflict() {
        use crate::config::RecoveryPolicy;

        let spec = colliding_loop(64);
        let mut cfg = MachineConfig::with_procs(4)
            .with_recovery(RecoveryPolicy::RetrySpeculative { max_attempts: 2 });
        cfg.trace_capacity = 4096;
        let serial = run_scenario_configured(&spec, Scenario::Serial, cfg);
        let run = run_scenario_configured(&spec, Scenario::Hw, cfg);
        assert_eq!(run.passed, Some(false));
        assert!(run.failure.is_some());
        assert_eq!(run.stats.get("retry.speculative_reruns"), 2);
        assert!(run.final_image.same_contents(&serial.final_image, &[A]));
        let serial_fallback = run.trace.iter().any(|e| {
            matches!(
                e,
                TraceEvent::Recovery {
                    action: "serial-reexec",
                    attempt: 2,
                    ..
                }
            )
        });
        assert!(serial_fallback, "exhaustion must emit the fallback event");
    }

    /// A `NodePause` outlasting every retransmission backoff exhausts the
    /// `RetrySpeculative` budget: each attempt escalates to
    /// `NodeUnreachable`, and after the budget burns the machine falls back
    /// to serial re-execution with the serial-equivalent image. The
    /// per-attempt cost (abort + restore + re-run to the same escalation
    /// point) is probe-pinned: the node fault is a pure function of
    /// (src, dst, cycle) and draws no RNG, so consecutive attempts cost
    /// exactly the same number of cycles.
    #[test]
    fn retry_exhaustion_under_long_pause_falls_back_to_serial() {
        use crate::config::RecoveryPolicy;
        use specrt_proto::{FaultConfig, NetConfig, NodeFaultConfig, NodeFaultKind};

        let spec = gather_loop(64);
        let faults = FaultConfig {
            node_fault: Some(NodeFaultConfig {
                kind: NodeFaultKind::Pause {
                    for_cycles: u64::MAX / 2,
                },
                node: 2,
                at_cycle: 1,
            }),
            ..FaultConfig::none()
        };
        let run_with = |attempts: u32| {
            let mut cfg =
                MachineConfig::with_procs(4).with_net(NetConfig::flat().with_faults(faults));
            cfg.mem.retry.timeout = 64;
            cfg.mem.retry.max_retries = 2;
            cfg.trace_capacity = 4096;
            cfg.recovery = RecoveryPolicy::RetrySpeculative {
                max_attempts: attempts,
            };
            run_scenario_configured(&spec, Scenario::Hw, cfg)
        };
        let serial = run_scenario(&spec, Scenario::Serial, 4);

        let runs: Vec<RunResult> = [1u32, 2, 3].map(run_with).to_vec();
        for run in &runs {
            assert_eq!(run.passed, Some(false), "{:?}", run.failure);
            assert!(
                run.failure.as_deref().unwrap_or("").contains("unreachable"),
                "expected watchdog escalation, got {:?}",
                run.failure
            );
            assert!(run.stats.get("fault.node.unreachable") >= 1);
            assert!(run
                .final_image
                .same_contents(&serial.final_image, &[A, OUT]));
        }
        assert_eq!(runs[0].stats.get("retry.speculative_reruns"), 1);
        assert_eq!(runs[1].stats.get("retry.speculative_reruns"), 2);
        assert_eq!(runs[2].stats.get("retry.speculative_reruns"), 3);
        for (run, budget) in runs.iter().zip([1u32, 2, 3]) {
            assert!(
                run.trace.iter().any(|e| matches!(
                    e,
                    TraceEvent::Recovery {
                        action: "serial-reexec",
                        attempt,
                        ..
                    } if *attempt == budget
                )),
                "missing serial fallback event for budget {budget}"
            );
        }
        // Probe-pinned per-attempt cost: cycle-exact linearity across
        // budgets.
        let t: Vec<u64> = runs.iter().map(|r| r.total_cycles.raw()).collect();
        assert!(t[1] > t[0], "an extra attempt must cost time");
        assert_eq!(
            t[2] - t[1],
            t[1] - t[0],
            "per-attempt cost must be cycle-exact: {t:?}"
        );
    }

    /// The acceptance scenario for the checkpoint plane: a node crash
    /// mid-loop under `CheckpointRestart` rolls back to the last window
    /// checkpoint and re-runs only the lost iterations on the survivors —
    /// the loop still *passes*, no whole-loop serial re-execution happens,
    /// and the final image is the serial one.
    #[test]
    fn checkpoint_restart_recovers_node_crash_without_full_reexec() {
        use crate::config::{CheckpointConfig, RecoveryPolicy};
        use specrt_proto::{FaultConfig, NetConfig, NodeFaultConfig, NodeFaultKind};

        let spec = gather_loop(64);
        let recovery = RecoveryPolicy::CheckpointRestart {
            checkpoint: CheckpointConfig { every_iters: 16 },
        };
        let mk_cfg = |faults: FaultConfig| {
            let mut cfg =
                MachineConfig::with_procs(4).with_net(NetConfig::flat().with_faults(faults));
            cfg.mem.retry.timeout = 64;
            cfg.mem.retry.max_retries = 2;
            cfg.trace_capacity = 4096;
            cfg.recovery = recovery;
            cfg
        };
        // Fault-free probe run under the same checkpointing cadence, to pin
        // a crash time that lands past the first checkpoint.
        let probe = run_scenario_configured(&spec, Scenario::Hw, mk_cfg(FaultConfig::none()));
        assert_eq!(probe.passed, Some(true), "{:?}", probe.failure);
        assert!(probe.stats.get("checkpoint.snapshots") >= 3);
        assert_eq!(probe.stats.get("checkpoint.restores"), 0);
        let crash_at = probe.total_cycles.raw() * 2 / 3;

        let faults = FaultConfig {
            node_fault: Some(NodeFaultConfig {
                kind: NodeFaultKind::Crash,
                node: 3,
                at_cycle: crash_at,
            }),
            ..FaultConfig::none()
        };
        let serial = run_scenario(&spec, Scenario::Serial, 4);
        let hw = run_scenario_configured(&spec, Scenario::Hw, mk_cfg(faults));
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
        assert_eq!(hw.iterations, 64, "every iteration must commit");
        assert!(hw.stats.get("fault.node.unreachable") >= 1);
        assert!(hw.stats.get("checkpoint.restores") >= 1);
        assert_eq!(hw.stats.get("checkpoint.serial_fallbacks"), 0);
        assert!(
            hw.trace.iter().any(|e| matches!(
                e,
                TraceEvent::Recovery {
                    action: "checkpoint-restart",
                    ..
                }
            )),
            "restart must be visible in the event trace"
        );
        assert!(
            !hw.trace.iter().any(|e| matches!(
                e,
                TraceEvent::Recovery {
                    action: "serial-reexec",
                    ..
                }
            )),
            "recovery must not fall back to serial re-execution"
        );
        assert!(hw.final_image.same_contents(&serial.final_image, &[A, OUT]));
    }

    /// With no checkpoint preceding the failure (crash before the first
    /// window barrier), `CheckpointRestart` degrades to the serial safety
    /// net — and a deterministic conflict makes the post-restore rerun fail
    /// again, exercising the suffix-serial fallback. Both end on the serial
    /// image.
    #[test]
    fn checkpoint_restart_serial_fallbacks_match_serial() {
        use crate::config::{CheckpointConfig, RecoveryPolicy};
        use specrt_proto::{FaultConfig, NetConfig, NodeFaultConfig, NodeFaultKind};

        let recovery = RecoveryPolicy::CheckpointRestart {
            checkpoint: CheckpointConfig { every_iters: 16 },
        };

        // Crash from cycle 0: the very first window dies (the permutation
        // loop's early clean-line hits send updates before the first
        // barrier), no checkpoint exists, and the whole loop re-executes
        // serially.
        let spec = permutation_loop(64);
        let faults = FaultConfig {
            node_fault: Some(NodeFaultConfig {
                kind: NodeFaultKind::Crash,
                node: 1,
                at_cycle: 0,
            }),
            ..FaultConfig::none()
        };
        let mut cfg = MachineConfig::with_procs(4).with_net(NetConfig::flat().with_faults(faults));
        cfg.mem.retry.timeout = 64;
        cfg.mem.retry.max_retries = 2;
        cfg.recovery = recovery;
        let serial = run_scenario(&spec, Scenario::Serial, 4);
        let hw = run_scenario_configured(&spec, Scenario::Hw, cfg);
        assert_eq!(hw.passed, Some(false), "{:?}", hw.failure);
        assert_eq!(hw.stats.get("checkpoint.restores"), 0);
        assert!(hw.final_image.same_contents(&serial.final_image, &[A]));

        // Deterministic late conflict: the first two windows pass and
        // checkpoint, iterations 32+ all collide on A[0] — the restart
        // reruns the suffix, fails again deterministically, and only the
        // suffix re-executes serially from the checkpoint.
        let mut spec = permutation_loop(64);
        let k_init: Vec<Scalar> = (0..64)
            .map(|i| Scalar::Int(if i < 32 { i } else { 0 }))
            .collect();
        spec.arrays[1] = ArrayDecl::with_init(K, ElemSize::W8, k_init);
        spec.name = "late-collision".into();
        let mut cfg = MachineConfig::with_procs(4);
        cfg.recovery = recovery;
        cfg.trace_capacity = 4096;
        let serial = run_scenario(&spec, Scenario::Serial, 4);
        let hw = run_scenario_configured(&spec, Scenario::Hw, cfg);
        assert_eq!(hw.passed, Some(false));
        assert!(hw.stats.get("checkpoint.restores") >= 1);
        assert!(hw.stats.get("checkpoint.serial_fallbacks") >= 1);
        assert!(
            hw.trace.iter().any(|e| matches!(
                e,
                TraceEvent::Recovery {
                    action: "checkpoint-restart",
                    ..
                }
            )) && hw.trace.iter().any(|e| matches!(
                e,
                TraceEvent::Recovery {
                    action: "serial-reexec",
                    ..
                }
            )),
            "both recovery stages must be visible in the event trace"
        );
        assert!(hw.final_image.same_contents(&serial.final_image, &[A]));
    }

    /// The FAIL broadcast rides the same interconnect as everything else:
    /// on a congested mesh the abort traffic queues behind hot links, yet
    /// the post-detection `abort_latency` is still charged on top of the
    /// (delayed) detection time, and the machine quiesces — `run_hw` drains
    /// every in-flight message and checks directory/cache agreement before
    /// the serial safety net runs, so the final image must still be the
    /// serial one.
    #[test]
    fn mesh_contention_delays_abort_but_keeps_accounting_and_quiescence() {
        use specrt_proto::NetConfig;

        let spec = colliding_loop(64);
        let serial = run_scenario(&spec, Scenario::Serial, 4);

        let hot = |abort: u64| {
            let mut cfg =
                MachineConfig::with_procs(4).with_net(NetConfig::mesh(4).with_link_service(400));
            cfg.abort_latency = abort;
            cfg
        };
        let run = run_scenario_configured(&spec, Scenario::Hw, hot(200));
        assert_eq!(run.passed, Some(false));
        assert!(
            run.iterations < 64,
            "must abort early even under contention"
        );
        assert!(
            run.net.total_queue > 0,
            "a 400-cycle link service must actually queue: {:?}",
            run.net
        );
        assert!(
            run.final_image.same_contents(&serial.final_image, &[A]),
            "machine must quiesce and fall back to the serial answer"
        );

        // Detection is network-bound: the same abort on the flat
        // infinite-bandwidth crossbar resolves sooner end to end.
        let mut flat_cfg = MachineConfig::with_procs(4);
        flat_cfg.abort_latency = 200;
        let flat = run_scenario_configured(&spec, Scenario::Hw, flat_cfg);
        assert_eq!(flat.passed, Some(false));
        assert!(
            run.total_cycles > flat.total_cycles,
            "hot mesh {} must be slower to detect + recover than flat {}",
            run.total_cycles.raw(),
            flat.total_cycles.raw()
        );

        // `abort_latency` accounting survives contention. The charge is
        // `max(detect + abort_latency, pending network drain)` per
        // processor, so short latencies can hide inside the queue drain —
        // but once the latency dominates, lengthening it by Δ must push the
        // end-to-end time out by exactly Δ.
        let slow = run_scenario_configured(&spec, Scenario::Hw, hot(5_000));
        let slower = run_scenario_configured(&spec, Scenario::Hw, hot(10_000));
        assert_eq!(slow.passed, Some(false));
        assert!(slow.total_cycles > run.total_cycles, "latency not charged");
        assert_eq!(
            slower.total_cycles.raw() - slow.total_cycles.raw(),
            5_000,
            "dominant abort_latency must shift the end time rigidly: {} vs {}",
            slower.total_cycles.raw(),
            slow.total_cycles.raw()
        );
        assert!(slow.final_image.same_contents(&serial.final_image, &[A]));
    }
}

#[cfg(test)]
mod stamp_window_tests {
    use super::*;
    use crate::loopspec::ArrayDecl;
    use specrt_ir::{BinOp, Operand, ProgramBuilder};

    const A: ArrayId = ArrayId(0);
    const OUT: ArrayId = ArrayId(1);

    /// A privatized read-in workload: every iteration reads four table
    /// slots (read-first) and writes its own scratch slot.
    fn priv_spec(iters: u64, window: Option<u64>) -> LoopSpec {
        let mut b = ProgramBuilder::new();
        let mut acc = b.mov(Operand::ImmF(0.0));
        for slot in 0..4 {
            let v = b.load(A, Operand::ImmI(slot));
            acc = b.binop(BinOp::FAdd, Operand::Reg(acc), Operand::Reg(v));
        }
        let e = b.binop(BinOp::Rem, Operand::Iter, Operand::ImmI(20));
        let e2 = b.binop(BinOp::Add, Operand::Reg(e), Operand::ImmI(4));
        b.store(A, Operand::Reg(e2), Operand::Reg(acc));
        let rv = b.load(A, Operand::Reg(e2));
        b.store(OUT, Operand::Iter, Operand::Reg(rv));
        b.compute(20);
        let body = b.build().unwrap();
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: true,
                copy_out: false,
            },
        );
        LoopSpec {
            name: "stamp-window".into(),
            body,
            iters,
            arrays: vec![
                ArrayDecl::with_init(
                    A,
                    ElemSize::W8,
                    (0..24)
                        .map(|i| specrt_ir::Scalar::Float(1.0 + i as f64))
                        .collect(),
                ),
                ArrayDecl::zeroed(OUT, iters, ElemSize::W8),
            ],
            plan,
            numbering: IterationNumbering::iteration_wise(),
            schedule: ScheduleKind::Static,
            live_after: vec![OUT],
            stamp_window: window,
        }
    }

    #[test]
    fn windowed_run_passes_and_matches_serial() {
        let spec = priv_spec(64, Some(16));
        let serial = run_scenario(&spec, Scenario::Serial, 4);
        let hw = run_scenario(&spec, Scenario::Hw, 4);
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
        assert_eq!(hw.iterations, 64);
        assert!(hw.stats.get("stamp_window_resets") >= 3);
        assert!(hw.final_image.same_contents(&serial.final_image, &[OUT]));
    }

    #[test]
    fn windowed_run_costs_more_than_unwindowed() {
        let plain = run_scenario(&priv_spec(64, None), Scenario::Hw, 4);
        let windowed = run_scenario(&priv_spec(64, Some(8)), Scenario::Hw, 4);
        assert_eq!(plain.passed, Some(true));
        assert_eq!(windowed.passed, Some(true));
        assert!(
            windowed.total_cycles > plain.total_cycles,
            "periodic synchronization must cost: {} vs {}",
            windowed.total_cycles,
            plain.total_cycles
        );
    }

    #[test]
    fn window_boundary_masks_cross_window_flow_dependence() {
        // Iteration 0 writes element 30; iteration 40 reads it first. With
        // a 32-iteration window the barrier orders them (valid!), so the
        // windowed run passes while the unwindowed stamped run fails.
        let mut b = ProgramBuilder::new();
        let is0 = b.binop(BinOp::CmpEq, Operand::Iter, Operand::ImmI(0));
        let not0 = b.label();
        let end = b.label();
        b.bz(Operand::Reg(is0), not0);
        b.store(A, Operand::ImmI(30), Operand::ImmF(7.0));
        b.jmp(end);
        b.bind(not0);
        let is40 = b.binop(BinOp::CmpEq, Operand::Iter, Operand::ImmI(40));
        b.bz(Operand::Reg(is40), end);
        let v = b.load(A, Operand::ImmI(30));
        b.store(OUT, Operand::ImmI(40), Operand::Reg(v));
        b.bind(end);
        b.compute(10);
        let body = b.build().unwrap();
        let mut plan = TestPlan::new();
        plan.set(
            A,
            ProtocolKind::Priv {
                read_in: true,
                copy_out: false,
            },
        );
        let mk = |window| LoopSpec {
            name: "cross-window".into(),
            body: body.clone(),
            iters: 64,
            arrays: vec![
                ArrayDecl::zeroed(A, 32, ElemSize::W8),
                ArrayDecl::zeroed(OUT, 64, ElemSize::W8),
            ],
            plan: plan.clone(),
            numbering: IterationNumbering::iteration_wise(),
            schedule: ScheduleKind::Static,
            live_after: vec![OUT],
            stamp_window: window,
        };
        let unwindowed = run_scenario(&mk(None), Scenario::Hw, 2);
        assert_eq!(
            unwindowed.passed,
            Some(false),
            "flow dependence across procs"
        );
        let windowed = run_scenario(&mk(Some(32)), Scenario::Hw, 2);
        assert_eq!(windowed.passed, Some(true), "{:?}", windowed.failure);
        // Both end in the serial state regardless.
        let serial = run_scenario(&mk(None), Scenario::Serial, 2);
        assert!(windowed
            .final_image
            .same_contents(&serial.final_image, &[OUT]));
        assert!(unwindowed
            .final_image
            .same_contents(&serial.final_image, &[OUT]));
    }
}

#[cfg(test)]
mod detailed_barrier_tests {
    use super::*;
    use crate::loopspec::ArrayDecl;
    use specrt_ir::{Operand, ProgramBuilder};

    const A: ArrayId = ArrayId(0);

    fn simple_spec(iters: u64) -> LoopSpec {
        let mut b = ProgramBuilder::new();
        b.store(A, Operand::Iter, Operand::Iter);
        b.compute(30);
        LoopSpec {
            name: "barrier-test".into(),
            body: b.build().unwrap(),
            iters,
            arrays: vec![ArrayDecl::zeroed(A, iters, ElemSize::W8)],
            plan: TestPlan::new(),
            numbering: IterationNumbering::iteration_wise(),
            schedule: ScheduleKind::Static,
            live_after: vec![A],
            stamp_window: None,
        }
    }

    #[test]
    fn detailed_barrier_completes_and_matches_serial() {
        let spec = simple_spec(64);
        let mut cfg = MachineConfig::with_procs(8);
        cfg.detailed_barrier = true;
        let run = run_scenario_configured(&spec, Scenario::Hw, cfg);
        assert_eq!(run.passed, Some(true));
        let serial = run_scenario_configured(&spec, Scenario::Serial, cfg);
        assert!(run.final_image.same_contents(&serial.final_image, &[A]));
    }

    #[test]
    fn detailed_barrier_cost_grows_with_processors() {
        // With the constant model the barrier costs the same at 4 and 16
        // processors; the detailed model serializes arrivals and wake-ups
        // at the counter's home bank, so sync per processor grows.
        let spec = simple_spec(64);
        let sync_of = |procs: u32| {
            let mut cfg = MachineConfig::with_procs(procs);
            cfg.detailed_barrier = true;
            let r = run_scenario_configured(&spec, Scenario::Ideal, cfg);
            r.breakdown.sync.raw()
        };
        let s4 = sync_of(4);
        let s16 = sync_of(16);
        assert!(
            s16 > s4,
            "barrier hot-spot must grow with processors: {s4} vs {s16}"
        );
    }

    #[test]
    fn detailed_barrier_exceeds_constant_model_under_contention() {
        let spec = simple_spec(64);
        let cfg = MachineConfig::with_procs(16);
        let constant = run_scenario_configured(&spec, Scenario::Ideal, cfg);
        let mut dcfg = cfg;
        dcfg.detailed_barrier = true;
        let detailed = run_scenario_configured(&spec, Scenario::Ideal, dcfg);
        assert!(
            detailed.total_cycles > constant.total_cycles,
            "16-way fetch&op serialization must cost more than the constant: {} vs {}",
            detailed.total_cycles,
            constant.total_cycles
        );
    }
}
