//! Plain-text table rendering for experiment results.

use std::fmt::Write as _;

/// A fixed-width text table.
///
/// # Examples
///
/// ```
/// use specrt_core::report::Table;
///
/// let mut t = Table::new(vec!["loop", "speedup"]);
/// t.row(vec!["ocean".into(), "3.95".into()]);
/// let s = t.render();
/// assert!(s.contains("ocean"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[c]);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(*w) + "  ")
            .collect::<String>();
        out.push_str(rule.trim_end());
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// A horizontal ASCII bar chart (the text analogue of the paper's figures).
///
/// # Examples
///
/// ```
/// use specrt_core::report::bar_chart;
///
/// let s = bar_chart(&[("HW".into(), 6.7), ("SW".into(), 2.9)], 40);
/// assert!(s.contains("HW"));
/// assert!(s.lines().next().unwrap().len() > s.lines().nth(1).unwrap().len());
/// ```
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0_f64, f64::max).max(1e-12);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let n = ((value / max) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{:<label_w$}  {:>7.2}  {}",
            label,
            value,
            "#".repeat(n.max(usize::from(*value > 0.0))),
        );
    }
    out
}

/// A stacked three-segment bar (Busy/Sync/Mem) rendered with distinct
/// glyphs: `#` busy, `~` sync, `.` mem.
///
/// # Examples
///
/// ```
/// use specrt_core::report::stacked_bar;
///
/// let bar = stacked_bar(0.5, 0.25, 0.25, 1.0, 20);
/// assert_eq!(bar, "##########~~~~~.....");
/// ```
pub fn stacked_bar(busy: f64, sync: f64, mem: f64, scale_max: f64, width: usize) -> String {
    let unit = width as f64 / scale_max.max(1e-12);
    let b = (busy * unit).round() as usize;
    let s = (sync * unit).round() as usize;
    let m = (mem * unit).round() as usize;
    format!("{}{}{}", "#".repeat(b), "~".repeat(s), ".".repeat(m))
}

/// Formats a stacked Busy/Sync/Mem triple.
pub fn bsm(busy: f64, sync: f64, mem: f64) -> String {
    format!("{busy:.2}+{sync:.2}+{mem:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a       "));
        assert!(lines[1].starts_with("------"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(bsm(0.5, 0.25, 0.25), "0.50+0.25+0.25");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(&[("a".into(), 10.0), ("b".into(), 5.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 5);
    }

    #[test]
    fn bar_chart_handles_zero_and_empty() {
        let s = bar_chart(&[("z".into(), 0.0)], 10);
        assert!(s.contains('z'));
        assert_eq!(bar_chart(&[], 10), "");
    }

    #[test]
    fn stacked_bar_segments() {
        let bar = stacked_bar(1.0, 0.0, 1.0, 2.0, 10);
        assert_eq!(bar, "#####.....");
    }
}
