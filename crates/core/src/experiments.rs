//! Drivers that regenerate the paper's evaluation (Figures 11–14), the
//! §3.4 state-cost comparison, and §4.1 ablations.
//!
//! Every driver returns structured rows; `specrt-bench`'s `experiments`
//! binary renders them with [`crate::report`] and they are exercised by the
//! micro benches. The paper's absolute numbers come from a different
//! substrate (Tangolite + Perfect Club binaries); what these drivers are
//! expected to reproduce is the *shape* of each figure — who wins, by
//! roughly what factor, and where the crossovers are. `EXPERIMENTS.md`
//! records paper-vs-measured for each one.

use specrt_engine::TimeBreakdown;
use specrt_machine::{run_scenario, RunResult, Scenario, SwVariant};
use specrt_spec::StateCost;
use specrt_workloads::{all_workloads, Scale, Workload};

/// Aggregated totals of one scenario over all invocations of a loop.
#[derive(Debug, Clone, Default)]
pub struct ScenarioTotals {
    /// Sum of wall-clock cycles over invocations.
    pub cycles: u64,
    /// Component-wise sum of the average-per-processor breakdowns.
    pub breakdown: TimeBreakdown,
    /// Invocations whose run-time test passed (speculative scenarios).
    pub passes: u64,
    /// Invocations whose run-time test failed.
    pub fails: u64,
}

impl ScenarioTotals {
    fn absorb(&mut self, r: &RunResult) {
        self.cycles += r.total_cycles.raw();
        self.breakdown = self.breakdown.merged(&r.breakdown);
        match r.passed {
            Some(true) => self.passes += 1,
            Some(false) => self.fails += 1,
            None => {}
        }
    }
}

/// All four scenarios of one loop, aggregated over its invocations.
#[derive(Debug, Clone)]
pub struct LoopResults {
    /// Workload name.
    pub workload: String,
    /// The paper's loop identifier.
    pub paper_loop: String,
    /// Processors used.
    pub procs: u32,
    /// Serial totals.
    pub serial: ScenarioTotals,
    /// Ideal (doall, no test) totals.
    pub ideal: ScenarioTotals,
    /// Software-scheme totals (the paper's variant for this loop).
    pub sw: ScenarioTotals,
    /// Hardware-scheme totals.
    pub hw: ScenarioTotals,
}

impl LoopResults {
    /// Speedup of a scenario over serial.
    pub fn speedup(&self, s: &ScenarioTotals) -> f64 {
        self.serial.cycles as f64 / s.cycles as f64
    }
}

/// Runs a batch of `(workload, procs)` evaluations with the individual
/// `run_scenario` calls — each an independent, deterministic simulation —
/// fanned out over `jobs` worker threads. Results are reassembled in the
/// flattening order (workload, then invocation, then Serial/Ideal/SW/HW),
/// so the output is identical for every `jobs ≥ 1`.
fn run_workloads_jobs(batch: &[(&Workload, u32)], jobs: usize) -> Vec<LoopResults> {
    let mut units: Vec<(usize, &specrt_machine::LoopSpec, Scenario, u32)> = Vec::new();
    for (wi, &(w, procs)) in batch.iter().enumerate() {
        for spec in &w.invocations {
            for scenario in [
                Scenario::Serial,
                Scenario::Ideal,
                Scenario::Sw(w.sw_variant),
                Scenario::Hw,
            ] {
                units.push((wi, spec, scenario, procs));
            }
        }
    }
    let results = specrt_par::par_map(jobs, &units, |_, &(_, spec, scenario, procs)| {
        run_scenario(spec, scenario, procs)
    });
    let mut out: Vec<LoopResults> = batch
        .iter()
        .map(|&(w, procs)| LoopResults {
            workload: w.name.to_string(),
            paper_loop: w.paper_loop.to_string(),
            procs,
            serial: ScenarioTotals::default(),
            ideal: ScenarioTotals::default(),
            sw: ScenarioTotals::default(),
            hw: ScenarioTotals::default(),
        })
        .collect();
    for (&(wi, _, scenario, _), r) in units.iter().zip(&results) {
        let row = &mut out[wi];
        match scenario {
            Scenario::Serial => row.serial.absorb(r),
            Scenario::Ideal => row.ideal.absorb(r),
            Scenario::Sw(_) => row.sw.absorb(r),
            Scenario::Hw => row.hw.absorb(r),
        }
    }
    out
}

/// Runs all four scenarios of `w` on `procs` processors, aggregating over
/// every invocation.
pub fn run_workload(w: &Workload, procs: u32) -> LoopResults {
    run_workloads_jobs(&[(w, procs)], 1)
        .pop()
        .expect("one workload in, one result out")
}

/// Runs every workload at its paper processor count.
pub fn evaluate_all(scale: Scale) -> Vec<LoopResults> {
    evaluate_all_jobs(scale, 1)
}

/// [`evaluate_all`] with the scenario runs distributed over `jobs` worker
/// threads. Identical output for every `jobs ≥ 1`.
pub fn evaluate_all_jobs(scale: Scale, jobs: usize) -> Vec<LoopResults> {
    let workloads = all_workloads(scale);
    let batch: Vec<(&Workload, u32)> = workloads.iter().map(|w| (w, w.procs)).collect();
    run_workloads_jobs(&batch, jobs)
}

// ----------------------------------------------------------------------
// Figure 11: speedups
// ----------------------------------------------------------------------

/// One bar group of Figure 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Loop name.
    pub workload: String,
    /// Processors (8 for Ocean, 16 otherwise).
    pub procs: u32,
    /// Speedup of the Ideal execution.
    pub ideal: f64,
    /// Speedup of the software scheme.
    pub sw: f64,
    /// Speedup of the hardware scheme.
    pub hw: f64,
}

/// Figure 11 from precomputed results.
pub fn fig11_from(results: &[LoopResults]) -> Vec<Fig11Row> {
    results
        .iter()
        .map(|r| Fig11Row {
            workload: r.workload.clone(),
            procs: r.procs,
            ideal: r.speedup(&r.ideal),
            sw: r.speedup(&r.sw),
            hw: r.speedup(&r.hw),
        })
        .collect()
}

/// Runs and summarizes Figure 11.
pub fn fig11(scale: Scale) -> Vec<Fig11Row> {
    fig11_from(&evaluate_all(scale))
}

/// [`fig11`] with the scenario runs distributed over `jobs` workers.
pub fn fig11_jobs(scale: Scale, jobs: usize) -> Vec<Fig11Row> {
    fig11_from(&evaluate_all_jobs(scale, jobs))
}

// ----------------------------------------------------------------------
// Figure 12: execution-time breakdown
// ----------------------------------------------------------------------

/// One bar of Figure 12: a scenario's Busy/Sync/Mem, normalized to the
/// loop's serial execution time.
#[derive(Debug, Clone)]
pub struct Fig12Bar {
    /// Scenario label (`Serial`, `Ideal`, `SW`, `HW`).
    pub scenario: String,
    /// Busy fraction of serial time.
    pub busy: f64,
    /// Sync fraction of serial time.
    pub sync: f64,
    /// Mem fraction of serial time.
    pub mem: f64,
}

impl Fig12Bar {
    /// Total normalized height of the bar.
    pub fn total(&self) -> f64 {
        self.busy + self.sync + self.mem
    }

    fn from(b: &TimeBreakdown, serial_cycles: u64, label: &str) -> Fig12Bar {
        let n = serial_cycles as f64;
        Fig12Bar {
            scenario: label.to_string(),
            busy: b.busy.raw() as f64 / n,
            sync: b.sync.raw() as f64 / n,
            mem: b.mem.raw() as f64 / n,
        }
    }
}

/// One bar group of Figure 12.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Loop name.
    pub workload: String,
    /// Processors.
    pub procs: u32,
    /// Bars in Serial/Ideal/SW/HW order.
    pub bars: Vec<Fig12Bar>,
}

/// Figure 12 from precomputed results.
pub fn fig12_from(results: &[LoopResults]) -> Vec<Fig12Row> {
    results
        .iter()
        .map(|r| {
            let n = r.serial.cycles;
            Fig12Row {
                workload: r.workload.clone(),
                procs: r.procs,
                bars: vec![
                    Fig12Bar::from(&r.serial.breakdown, n, "Serial1"),
                    Fig12Bar::from(&r.ideal.breakdown, n, &format!("Ideal{}", r.procs)),
                    Fig12Bar::from(&r.sw.breakdown, n, &format!("SW{}", r.procs)),
                    Fig12Bar::from(&r.hw.breakdown, n, &format!("HW{}", r.procs)),
                ],
            }
        })
        .collect()
}

/// Runs and summarizes Figure 12.
pub fn fig12(scale: Scale) -> Vec<Fig12Row> {
    fig12_from(&evaluate_all(scale))
}

/// [`fig12`] with the scenario runs distributed over `jobs` workers.
pub fn fig12_jobs(scale: Scale, jobs: usize) -> Vec<Fig12Row> {
    fig12_from(&evaluate_all_jobs(scale, jobs))
}

// ----------------------------------------------------------------------
// Figure 13: slowdown due to failure
// ----------------------------------------------------------------------

/// One bar group of Figure 13: execution time of the forced-failure
/// instance, normalized to serial.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Loop name.
    pub workload: String,
    /// Serial bar (1.0 by construction).
    pub serial: Fig12Bar,
    /// Software scheme (fails after running the whole loop).
    pub sw: Fig12Bar,
    /// Hardware scheme (fails as soon as the dependence occurs).
    pub hw: Fig12Bar,
    /// Iterations the hardware scheme executed before aborting.
    pub hw_iterations_before_abort: u64,
    /// The loop's iteration count.
    pub iterations: u64,
}

/// Runs Figure 13: forces the failure of one instance of each loop
/// (the §6.2 recipes baked into each workload's `failure_instance`).
pub fn fig13(scale: Scale) -> Vec<Fig13Row> {
    fig13_jobs(scale, 1)
}

/// [`fig13`] with one worker per loop (each row needs three scenario runs
/// of the same forced-failure instance). Identical output for every
/// `jobs ≥ 1`.
pub fn fig13_jobs(scale: Scale, jobs: usize) -> Vec<Fig13Row> {
    let workloads = all_workloads(scale);
    specrt_par::par_map(jobs, &workloads, |_, w| {
        {
            let spec = &w.failure_instance;
            let serial = run_scenario(spec, Scenario::Serial, w.procs);
            // Track's recipe is "run the iteration-wise tests on the loop
            // instantiation that needs processor-wise tests to pass"; the
            // other loops fail under their usual variant too.
            let sw_variant = if w.name == "track" {
                SwVariant::IterationWise
            } else {
                w.sw_variant
            };
            let sw = run_scenario(spec, Scenario::Sw(sw_variant), w.procs);
            let hw = run_scenario(spec, Scenario::Hw, w.procs);
            assert_eq!(sw.passed, Some(false), "{}: SW must fail", w.name);
            assert_eq!(hw.passed, Some(false), "{}: HW must fail", w.name);
            let n = serial.total_cycles.raw();
            Fig13Row {
                workload: w.name.to_string(),
                serial: Fig12Bar::from(&serial.breakdown, n, "Serial"),
                sw: Fig12Bar::from(&sw.breakdown, n, "SW"),
                hw: Fig12Bar::from(&hw.breakdown, n, "HW"),
                hw_iterations_before_abort: hw.iterations,
                iterations: spec.iters,
            }
        }
    })
}

// ----------------------------------------------------------------------
// Figure 14: scalability
// ----------------------------------------------------------------------

/// One point of Figure 14: speedups at a processor count.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Loop name.
    pub workload: String,
    /// Processor count of this point.
    pub procs: u32,
    /// Ideal speedup.
    pub ideal: f64,
    /// Software-scheme speedup.
    pub sw: f64,
    /// Hardware-scheme speedup.
    pub hw: f64,
}

/// Runs Figure 14: P3m, Adm and Track at 8 and 16 processors (Ocean is
/// too small to run with 16, as in the paper).
pub fn fig14(scale: Scale) -> Vec<Fig14Row> {
    fig14_jobs(scale, 1)
}

/// [`fig14`] with the scenario runs of every (loop, processor-count) point
/// distributed over `jobs` workers. Identical output for every `jobs ≥ 1`.
pub fn fig14_jobs(scale: Scale, jobs: usize) -> Vec<Fig14Row> {
    let workloads = all_workloads(scale);
    let batch: Vec<(&Workload, u32)> = workloads
        .iter()
        .filter(|w| w.name != "ocean")
        .flat_map(|w| [(w, 8u32), (w, 16)])
        .collect();
    run_workloads_jobs(&batch, jobs)
        .iter()
        .map(|r| Fig14Row {
            workload: r.workload.clone(),
            procs: r.procs,
            ideal: r.speedup(&r.ideal),
            sw: r.speedup(&r.sw),
            hw: r.speedup(&r.hw),
        })
        .collect()
}

// ----------------------------------------------------------------------
// State-cost table (Figure 5 / §3.4)
// ----------------------------------------------------------------------

/// One row of the per-element overhead-state comparison.
#[derive(Debug, Clone)]
pub struct StateCostRow {
    /// Configuration label.
    pub config: String,
    /// Hardware directory bits per element.
    pub hw_dir_bits: u32,
    /// Hardware cache-tag bits per element.
    pub hw_tag_bits: u32,
    /// Software shadow bits per element.
    pub sw_bits: u32,
    /// HW / SW state ratio.
    pub ratio: f64,
}

/// The §3.4 hardware-vs-software state comparison for the paper's machine
/// sizes.
pub fn state_cost_table() -> Vec<StateCostRow> {
    let mut rows = Vec::new();
    for (procs, iters, read_in) in [
        (16u32, (1u64 << 16) - 1, false),
        (16, (1 << 16) - 1, true),
        (8, (1 << 10) - 1, false),
        (64, (1 << 20) - 1, true),
    ] {
        let c = StateCost::new(procs, iters);
        rows.push(StateCostRow {
            config: format!(
                "{procs} procs, 2^{} iters, read-in {}",
                64 - iters.leading_zeros(),
                if read_in { "yes" } else { "no" }
            ),
            hw_dir_bits: c.hw_dir_bits(read_in),
            hw_tag_bits: c.hw_tag_bits(),
            sw_bits: c.sw_bits(read_in),
            ratio: c.hw_over_sw_ratio(read_in),
        });
    }
    rows
}

// ----------------------------------------------------------------------
// Ablations (§4.1)
// ----------------------------------------------------------------------

/// One point of the chunk-size ablation on the privatization protocol.
#[derive(Debug, Clone)]
pub struct ChunkAblationRow {
    /// Superiteration size (1 = iteration-wise).
    pub chunk: u64,
    /// HW wall-clock cycles.
    pub hw_cycles: u64,
    /// Read-first signals sent to the shared directory.
    pub read_first_signals: u64,
    /// Stamp bits the directory needs at this chunking.
    pub stamp_bits: u32,
}

/// A privatization workload with heavy *read-first* traffic: every
/// iteration reads a handful of read-only table elements (each read is a
/// read-first for its iteration, generating a shared-directory signal)
/// before writing its own private slots. Used by the §4.1 ablation, where
/// P3m itself would show nothing (its iterations always write before
/// reading).
fn read_first_heavy_loop(iters: u64) -> specrt_machine::LoopSpec {
    use specrt_ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
    use specrt_machine::{ArrayDecl, LoopSpec, ScheduleKind};
    use specrt_mem::ElemSize;
    use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

    let w = ArrayId(0);
    let out = ArrayId(1);
    let mut b = ProgramBuilder::new();
    // Read four read-only table slots (read-first every iteration).
    let mut acc = b.mov(Operand::ImmF(0.0));
    for slot in 0..4 {
        let v = b.load(w, Operand::ImmI(slot));
        acc = b.binop(BinOp::FAdd, Operand::Reg(acc), Operand::Reg(v));
    }
    // Write a private scratch slot, then read it back.
    let e = b.binop(BinOp::Rem, Operand::Iter, Operand::ImmI(60));
    let e2 = b.binop(BinOp::Add, Operand::Reg(e), Operand::ImmI(4));
    b.store(w, Operand::Reg(e2), Operand::Reg(acc));
    let rv = b.load(w, Operand::Reg(e2));
    b.store(out, Operand::Iter, Operand::Reg(rv));
    b.compute(30);
    let body = b.build().expect("read-first loop verifies");
    let mut plan = TestPlan::new();
    plan.set(
        w,
        ProtocolKind::Priv {
            read_in: true,
            copy_out: false,
        },
    );
    LoopSpec {
        name: "read-first-heavy".into(),
        body,
        iters,
        arrays: vec![
            ArrayDecl::with_init(w, ElemSize::W8, vec![Scalar::Float(1.0); 64]),
            ArrayDecl::zeroed(out, iters, ElemSize::W8),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![out],
        stamp_window: None,
    }
}

/// §4.1: "group contiguous iterations in chunks and use block cyclic
/// scheduling … the number of read-first iterations and, in general, the
/// number of messages and protocol tests decreases." Runs a
/// read-first-heavy privatization loop under increasing superiteration
/// sizes.
pub fn ablation_chunking(scale: Scale) -> Vec<ChunkAblationRow> {
    ablation_chunking_jobs(scale, 1)
}

/// [`ablation_chunking`] with one worker per chunk size.
pub fn ablation_chunking_jobs(scale: Scale, jobs: usize) -> Vec<ChunkAblationRow> {
    use specrt_machine::ScheduleKind;
    use specrt_spec::IterationNumbering;
    let iters = scale.pick(200, 1500, 6000);
    let procs = 16;
    specrt_par::par_map(jobs, &[1u64, 4, 16, 64], |_, &chunk| {
        let mut spec = read_first_heavy_loop(iters);
        if chunk > 1 {
            spec.numbering = IterationNumbering::chunked(chunk);
            spec.schedule = ScheduleKind::BlockCyclic { block: chunk };
        }
        let hw = run_scenario(&spec, Scenario::Hw, procs);
        assert_eq!(
            hw.passed,
            Some(true),
            "chunked read-first loop must pass: {:?}",
            hw.failure
        );
        ChunkAblationRow {
            chunk,
            hw_cycles: hw.total_cycles.raw(),
            read_first_signals: hw.stats.get("priv_read_first_signals"),
            stamp_bits: spec.numbering.stamp_bits(iters),
        }
    })
}

/// One point of the §2.2.4 profitability sweep.
#[derive(Debug, Clone)]
pub struct DensityRow {
    /// Conflict density of the generated instances.
    pub density: f64,
    /// Fraction of instances whose speculation passed.
    pub pass_rate: f64,
    /// Mean HW time, normalized to serial.
    pub hw_over_serial: f64,
    /// Mean SW time, normalized to serial.
    pub sw_over_serial: f64,
}

/// §2.2.4: "the compiler can use heuristics and statistics about the
/// parallelization success-rate … and automatically decide when run-time
/// parallelization can be profitable." Sweeps the conflict density of a
/// synthetic loop family and reports pass rates and expected costs: the
/// crossover where speculation stops paying is where `hw_over_serial`
/// crosses 1.0.
pub fn extension_density(scale: Scale) -> Vec<DensityRow> {
    extension_density_jobs(scale, 1)
}

/// [`extension_density`] with the `(density, seed)` instances distributed
/// over `jobs` workers. Per-instance ratios are summed in instance order, so
/// the floating-point accumulation — and thus the output — is identical for
/// every `jobs ≥ 1`.
pub fn extension_density_jobs(scale: Scale, jobs: usize) -> Vec<DensityRow> {
    const DENSITIES: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.25, 0.5];
    let instances = scale.pick(3, 8, 16);
    let iters = scale.pick(64, 128, 256);
    let procs = 8;
    let units: Vec<(f64, u64)> = DENSITIES
        .iter()
        .flat_map(|&density| (0..instances).map(move |seed| (density, seed)))
        .collect();
    let per_instance = specrt_par::par_map(jobs, &units, |_, &(density, seed)| {
        let spec = specrt_workloads::synth::conflict_loop(iters, density, seed);
        let serial = run_scenario(&spec, Scenario::Serial, procs);
        let hw = run_scenario(&spec, Scenario::Hw, procs);
        let sw = run_scenario(
            &spec,
            Scenario::Sw(specrt_workloads::synth::SW_VARIANT),
            procs,
        );
        (
            hw.passed == Some(true),
            hw.total_cycles.raw() as f64 / serial.total_cycles.raw() as f64,
            sw.total_cycles.raw() as f64 / serial.total_cycles.raw() as f64,
        )
    });
    DENSITIES
        .iter()
        .zip(per_instance.chunks(instances as usize))
        .map(|(&density, chunk)| {
            let mut passes = 0u32;
            let mut hw_sum = 0.0;
            let mut sw_sum = 0.0;
            for &(passed, hw_ratio, sw_ratio) in chunk {
                if passed {
                    passes += 1;
                }
                hw_sum += hw_ratio;
                sw_sum += sw_ratio;
            }
            DensityRow {
                density,
                pass_rate: passes as f64 / instances as f64,
                hw_over_serial: hw_sum / instances as f64,
                sw_over_serial: sw_sum / instances as f64,
            }
        })
        .collect()
}

/// One point of the abort-latency / coherence-policy sensitivity sweep.
#[derive(Debug, Clone)]
pub struct PolicyAblationRow {
    /// Configuration label.
    pub config: String,
    /// HW total cycles on the forced-failure Ocean instance (abort-latency
    /// rows) or on the parallel Ocean instance (coherence rows).
    pub hw_cycles: u64,
}

/// Sensitivity to the abort broadcast latency (failure path) and to the
/// dirty-read coherence policy (invalidate-on-fetch vs the classic DASH
/// sharing write-back).
pub fn ablation_policy(scale: Scale) -> Vec<PolicyAblationRow> {
    ablation_policy_jobs(scale, 1)
}

/// [`ablation_policy`] with one worker per configuration point.
pub fn ablation_policy_jobs(_scale: Scale, jobs: usize) -> Vec<PolicyAblationRow> {
    use specrt_machine::{run_scenario_configured, MachineConfig};
    // Abort latency probes the forced-failure instance; the coherence
    // policies run the parallel instance.
    let fail_spec = specrt_workloads::ocean::instance(0, true);
    let ok_spec = specrt_workloads::ocean::instance(0, false);
    let mut units: Vec<(String, MachineConfig, bool)> = Vec::new();
    for abort in [50u64, 200, 1000, 5000] {
        let mut cfg = MachineConfig::with_procs(8);
        cfg.abort_latency = abort;
        units.push((format!("abort latency {abort} (failing run)"), cfg, true));
    }
    for (label, downgrade) in [("invalidate-on-fetch", false), ("sharing write-back", true)] {
        let mut cfg = MachineConfig::with_procs(8);
        cfg.mem.dirty_read_downgrades = downgrade;
        units.push((format!("dirty reads: {label}"), cfg, false));
    }
    specrt_par::par_map(jobs, &units, |_, (config, cfg, failing)| {
        let spec = if *failing { &fail_spec } else { &ok_spec };
        let hw = run_scenario_configured(spec, Scenario::Hw, *cfg);
        assert_eq!(hw.passed, Some(!*failing), "{config}: {:?}", hw.failure);
        PolicyAblationRow {
            config: config.clone(),
            hw_cycles: hw.total_cycles.raw(),
        }
    })
}

/// One point of the machine-sensitivity ablation.
#[derive(Debug, Clone)]
pub struct MachineAblationRow {
    /// Configuration label.
    pub config: String,
    /// HW speedup over the same machine's serial run.
    pub hw_speedup: f64,
    /// SW speedup over the same machine's serial run.
    pub sw_speedup: f64,
}

/// Sensitivity of the headline comparison to the machine model: §5.1 notes
/// the small caches were chosen to match the workloads' working sets. We
/// sweep cache geometry and the write-buffer depth on Ocean (the most
/// memory-bound loop) and check that HW > SW survives every configuration.
pub fn ablation_machine(scale: Scale) -> Vec<MachineAblationRow> {
    ablation_machine_jobs(scale, 1)
}

/// [`ablation_machine`] with one worker per machine configuration.
pub fn ablation_machine_jobs(_scale: Scale, jobs: usize) -> Vec<MachineAblationRow> {
    use specrt_cache::CacheConfig;
    use specrt_machine::{run_scenario_configured, MachineConfig};

    let spec = specrt_workloads::ocean::instance(0, false);
    let w = all_workloads(Scale::Smoke)
        .into_iter()
        .find(|w| w.name == "ocean")
        .expect("ocean exists");
    let configs: Vec<(String, MachineConfig)> = vec![
        (
            "paper (32K/512K, wb16)".into(),
            MachineConfig::with_procs(w.procs),
        ),
        ("half caches (16K/256K)".into(), {
            let mut c = MachineConfig::with_procs(w.procs);
            c.mem.cache = CacheConfig {
                l1_lines: 256,
                l2_lines: 4096,
            };
            c
        }),
        ("double caches (64K/1M)".into(), {
            let mut c = MachineConfig::with_procs(w.procs);
            c.mem.cache = CacheConfig {
                l1_lines: 1024,
                l2_lines: 16384,
            };
            c
        }),
        ("write buffer 2".into(), {
            let mut c = MachineConfig::with_procs(w.procs);
            c.write_buffer = 2;
            c
        }),
        ("write buffer 64".into(), {
            let mut c = MachineConfig::with_procs(w.procs);
            c.write_buffer = 64;
            c
        }),
        ("detailed fetch&op barrier".into(), {
            let mut c = MachineConfig::with_procs(w.procs);
            c.detailed_barrier = true;
            c
        }),
    ];
    specrt_par::par_map(jobs, &configs, |_, (label, cfg)| {
        let serial = run_scenario_configured(&spec, Scenario::Serial, *cfg);
        let hw = run_scenario_configured(&spec, Scenario::Hw, *cfg);
        let sw = run_scenario_configured(&spec, Scenario::Sw(w.sw_variant), *cfg);
        MachineAblationRow {
            config: label.clone(),
            hw_speedup: serial.total_cycles.raw() as f64 / hw.total_cycles.raw() as f64,
            sw_speedup: serial.total_cycles.raw() as f64 / sw.total_cycles.raw() as f64,
        }
    })
}

/// One point of the Track block-size ablation.
#[derive(Debug, Clone)]
pub struct TrackBlockRow {
    /// Dynamic scheduling block size.
    pub block: u64,
    /// Whether the hardware test passed.
    pub passed: bool,
    /// HW wall-clock cycles.
    pub hw_cycles: u64,
}

/// §5.2: "the plain dynamically-scheduled hardware scheme passes all loops
/// if the iterations are scheduled in blocks of a few iterations each."
/// Runs Track's not-fully-parallel instance under various dynamic block
/// sizes: block 1 splits the colliding iteration pairs across processors
/// and must fail.
pub fn ablation_track_block(scale: Scale) -> Vec<TrackBlockRow> {
    ablation_track_block_jobs(scale, 1)
}

/// [`ablation_track_block`] with one worker per block size.
pub fn ablation_track_block_jobs(_scale: Scale, jobs: usize) -> Vec<TrackBlockRow> {
    use specrt_machine::ScheduleKind;
    specrt_par::par_map(jobs, &[1u64, 2, 4, 8], |_, &block| {
        let mut spec = specrt_workloads::track::instance(3, true);
        spec.schedule = ScheduleKind::Dynamic { block };
        let hw = run_scenario(&spec, Scenario::Hw, 16);
        TrackBlockRow {
            block,
            passed: hw.passed == Some(true),
            hw_cycles: hw.total_cycles.raw(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_smoke_shapes_hold() {
        let rows = fig11(Scale::Smoke);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.ideal > 1.0, "{}: Ideal must beat Serial", r.workload);
            assert!(r.hw > 1.0, "{}: HW must beat Serial", r.workload);
            assert!(
                r.hw > r.sw,
                "{}: HW ({:.2}) must beat SW ({:.2})",
                r.workload,
                r.hw,
                r.sw
            );
            assert!(
                r.ideal >= r.hw * 0.95,
                "{}: Ideal is an upper bound",
                r.workload
            );
        }
    }

    #[test]
    fn fig13_smoke_failure_shapes_hold() {
        let rows = fig13(Scale::Smoke);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.hw.total() < r.sw.total(),
                "{}: HW failure ({:.2}) must cost less than SW ({:.2})",
                r.workload,
                r.hw.total(),
                r.sw.total()
            );
            assert!(
                r.hw.total() >= 1.0,
                "{}: failure cannot beat serial",
                r.workload
            );
            assert!(
                r.hw_iterations_before_abort < r.iterations,
                "{}: HW must abort early",
                r.workload
            );
        }
    }

    #[test]
    fn parallel_figure_runs_match_single_threaded() {
        // f64's Debug rendering is shortest-round-trip exact, so equal
        // Debug strings mean bitwise-equal floats: the worker pool must be
        // invisible in every figure row.
        let serial = format!("{:?}", fig13(Scale::Smoke));
        let parallel = format!("{:?}", fig13_jobs(Scale::Smoke, 4));
        assert_eq!(serial, parallel, "fig13 must not depend on --jobs");

        let serial = format!("{:?}", evaluate_all(Scale::Smoke));
        let parallel = format!("{:?}", evaluate_all_jobs(Scale::Smoke, 4));
        assert_eq!(serial, parallel, "evaluate_all must not depend on --jobs");
    }

    #[test]
    fn state_cost_table_favors_hardware() {
        let rows = state_cost_table();
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.ratio < 1.0, "{}: HW needs less state", r.config);
        }
    }

    #[test]
    fn density_sweep_shows_profitability_crossover() {
        let rows = extension_density(Scale::Smoke);
        assert!(
            (rows[0].pass_rate - 1.0).abs() < 1e-9,
            "density 0 always passes"
        );
        assert!(rows[0].hw_over_serial < 1.0, "parallel case must pay off");
        let last = rows.last().unwrap();
        assert!(last.pass_rate < 1.0, "high density must fail sometimes");
        // Pass rate is nonincreasing in density (same seeds per density).
        for w in rows.windows(2) {
            assert!(
                w[1].pass_rate <= w[0].pass_rate + 1e-9,
                "pass rate must not increase with density: {rows:?}"
            );
        }
    }

    #[test]
    fn abort_latency_monotonically_increases_failure_cost() {
        let rows = ablation_policy(Scale::Smoke);
        let aborts: Vec<u64> = rows
            .iter()
            .filter(|r| r.config.starts_with("abort latency"))
            .map(|r| r.hw_cycles)
            .collect();
        for w in aborts.windows(2) {
            assert!(
                w[1] >= w[0],
                "higher abort latency cannot be cheaper: {aborts:?}"
            );
        }
        // Both coherence policies complete the parallel run.
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn hw_beats_sw_on_every_machine_configuration() {
        for row in ablation_machine(Scale::Smoke) {
            assert!(
                row.hw_speedup > row.sw_speedup,
                "{}: HW {:.2} vs SW {:.2}",
                row.config,
                row.hw_speedup,
                row.sw_speedup
            );
        }
    }

    #[test]
    fn chunking_reduces_read_first_signals() {
        let rows = ablation_chunking(Scale::Smoke);
        assert!(rows[0].read_first_signals > 0, "iteration-wise must signal");
        for w in rows.windows(2) {
            assert!(
                w[1].read_first_signals < w[0].read_first_signals,
                "larger chunks must send fewer signals: {rows:?}"
            );
            assert!(w[1].stamp_bits <= w[0].stamp_bits);
        }
    }

    #[test]
    fn track_block_ablation_block1_fails() {
        let rows = ablation_track_block(Scale::Smoke);
        assert!(!rows[0].passed, "block 1 splits colliding pairs");
        assert!(rows[2].passed, "block 4 keeps pairs together");
        let pass_cost = rows[2].hw_cycles;
        let fail_cost = rows[0].hw_cycles;
        assert!(
            fail_cost > pass_cost,
            "failing run pays the serial fallback"
        );
    }
}
