#![warn(missing_docs)]

//! # specrt-core
//!
//! The top-level public API of the `specrt` system: a speculative run-time
//! loop parallelization runtime for a simulated CC-NUMA multiprocessor,
//! reproducing *"Hardware for Speculative Run-Time Parallelization in
//! Distributed Shared-Memory Multiprocessors"* (Zhang, Rauchwerger &
//! Torrellas, HPCA 1998).
//!
//! ## Quickstart
//!
//! ```
//! use specrt_core::{ParallelizationStrategy, SpeculativeRuntime};
//! use specrt_workloads::{ocean, Scale};
//!
//! // A loop the compiler could not analyze (Ocean's ftrvmt.do109 stand-in).
//! let spec = ocean::instance(0, false);
//!
//! // Parallelize it speculatively on an 8-processor machine using the
//! // paper's hardware scheme.
//! let runtime = SpeculativeRuntime::new(8);
//! let outcome = runtime.run(&spec, ParallelizationStrategy::Hardware);
//! assert_eq!(outcome.passed, Some(true)); // the loop was a doall
//! ```
//!
//! ## Modules
//!
//! * [`experiments`] — drivers that regenerate every figure of the paper's
//!   evaluation section (Figures 11–14) plus the state-cost table and the
//!   §4.1 chunking ablation;
//! * [`report`] — plain-text table rendering for the experiment results.
//!
//! The heavy lifting lives in the subsystem crates (`specrt-engine`, `-ir`,
//! `-mem`, `-cache`, `-spec`, `-proto`, `-lrpd`, `-machine`,
//! `-workloads`), all re-exported by the `specrt` facade crate.

pub mod experiments;
pub mod report;

use specrt_machine::{run_scenario, LoopSpec, RunResult, Scenario, SwVariant};

pub use specrt_machine::{ArrayDecl, MachineConfig, Scenario as MachineScenario, ScheduleKind};

/// How a loop should be (speculatively) parallelized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelizationStrategy {
    /// Run serially (baseline / fallback).
    Serial,
    /// Doall without any run-time test (only valid if the loop is known
    /// parallel — the paper's `Ideal` upper bound).
    Unchecked,
    /// The software LRPD test, iteration-wise stamps.
    SoftwareIterationWise,
    /// The software LRPD test, processor-wise (requires static scheduling).
    SoftwareProcessorWise,
    /// The paper's hardware scheme: cache-coherence-protocol extensions
    /// detect dependences on the fly and abort immediately.
    Hardware,
}

impl ParallelizationStrategy {
    fn scenario(self) -> Scenario {
        match self {
            ParallelizationStrategy::Serial => Scenario::Serial,
            ParallelizationStrategy::Unchecked => Scenario::Ideal,
            ParallelizationStrategy::SoftwareIterationWise => {
                Scenario::Sw(SwVariant::IterationWise)
            }
            ParallelizationStrategy::SoftwareProcessorWise => {
                Scenario::Sw(SwVariant::ProcessorWise)
            }
            ParallelizationStrategy::Hardware => Scenario::Hw,
        }
    }
}

/// The speculative run-time parallelization runtime.
///
/// Owns nothing but the machine size; every [`run`](Self::run) builds a
/// fresh simulated machine (the paper flushes caches between loop
/// executions to mimic real conditions).
#[derive(Debug, Clone, Copy)]
pub struct SpeculativeRuntime {
    procs: u32,
}

impl SpeculativeRuntime {
    /// A runtime for a `procs`-processor machine.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is zero or exceeds 256.
    pub fn new(procs: u32) -> Self {
        assert!(procs > 0 && procs <= 256, "1..=256 processors supported");
        SpeculativeRuntime { procs }
    }

    /// Number of processors.
    pub fn procs(&self) -> u32 {
        self.procs
    }

    /// Runs `spec` under `strategy`, returning timing, the Busy/Sync/Mem
    /// breakdown, the test verdict, and the final memory contents.
    ///
    /// Speculative strategies are always *safe*: if the run-time test
    /// fails, state is restored and the loop re-executes serially, so the
    /// final contents equal a serial execution regardless of the verdict.
    pub fn run(&self, spec: &LoopSpec, strategy: ParallelizationStrategy) -> RunResult {
        run_scenario(spec, strategy.scenario(), self.procs)
    }

    /// Convenience: runs `spec` under every strategy of interest and
    /// returns `(serial, ideal, sw, hw)` using the given SW variant.
    pub fn run_all(
        &self,
        spec: &LoopSpec,
        sw: SwVariant,
    ) -> (RunResult, RunResult, RunResult, RunResult) {
        (
            self.run(spec, ParallelizationStrategy::Serial),
            self.run(spec, ParallelizationStrategy::Unchecked),
            run_scenario(spec, Scenario::Sw(sw), self.procs),
            self.run(spec, ParallelizationStrategy::Hardware),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_workloads::adm;

    #[test]
    fn runtime_runs_all_strategies() {
        let spec = adm::instance(0, false);
        let rt = SpeculativeRuntime::new(4);
        let (serial, ideal, sw, hw) = rt.run_all(&spec, SwVariant::ProcessorWise);
        assert!(serial.total_cycles > ideal.total_cycles);
        assert_eq!(hw.passed, Some(true));
        assert_eq!(sw.passed, Some(true));
        assert!(hw.speedup_over(&serial) > 1.0);
    }

    #[test]
    fn strategies_map_to_scenarios() {
        assert_eq!(ParallelizationStrategy::Hardware.scenario(), Scenario::Hw);
        assert_eq!(
            ParallelizationStrategy::SoftwareProcessorWise.scenario(),
            Scenario::Sw(SwVariant::ProcessorWise)
        );
        assert_eq!(ParallelizationStrategy::Serial.scenario(), Scenario::Serial);
    }

    #[test]
    #[should_panic(expected = "processors supported")]
    fn zero_procs_rejected() {
        SpeculativeRuntime::new(0);
    }
}
