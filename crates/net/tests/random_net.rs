//! Property tests for the interconnect's hard guarantees.
//!
//! The protocol algorithms assume in-order delivery per (src, dst) pair
//! (§3.2); the network promises it for every topology and bandwidth
//! setting. These tests drive the network with deterministic random
//! traffic (in-tree SplitMix64) and check the invariant plus bit-exact
//! determinism across replays.

use std::collections::HashMap;

use specrt_engine::{Cycles, SplitMix64};
use specrt_mem::NodeId;
use specrt_net::{Delivery, NetConfig, Network, Topology};

/// Random traffic pattern: `msgs` sends at non-decreasing times between
/// random node pairs. Returns `(src, dst, send_time)` triples.
fn traffic(seed: u64, nodes: u32, msgs: usize, burstiness: u64) -> Vec<(NodeId, NodeId, Cycles)> {
    let mut rng = SplitMix64::new(seed);
    let mut now = 0u64;
    let mut out = Vec::with_capacity(msgs);
    for _ in 0..msgs {
        // Bursty clock: long quiet gaps punctuated by same-cycle pileups.
        if rng.chance(0.3) {
            now += rng.below(burstiness.max(1));
        }
        let src = NodeId(rng.below(u64::from(nodes)) as u32);
        let dst = NodeId(rng.below(u64::from(nodes)) as u32);
        out.push((src, dst, Cycles(now)));
    }
    out
}

fn run(net: &mut Network, pattern: &[(NodeId, NodeId, Cycles)]) -> Vec<Delivery> {
    pattern
        .iter()
        .map(|&(src, dst, at)| net.send(src, dst, at))
        .collect()
}

fn check_in_order(pattern: &[(NodeId, NodeId, Cycles)], deliveries: &[Delivery]) {
    let mut last: HashMap<(u32, u32), Cycles> = HashMap::new();
    for (&(src, dst, at), d) in pattern.iter().zip(deliveries) {
        assert!(
            d.arrive >= at,
            "delivery {d:?} precedes its send time {at:?}"
        );
        let prev = last.entry((src.0, dst.0)).or_insert(Cycles::ZERO);
        assert!(
            d.arrive >= *prev,
            "pair ({src:?} -> {dst:?}) reordered: {:?} after {:?}",
            d.arrive,
            prev
        );
        *prev = d.arrive;
    }
}

#[test]
fn in_order_per_pair_under_random_contention() {
    let topologies = [
        (NetConfig::flat(), "flat/infinite-bw"),
        (NetConfig::flat().with_link_service(8), "flat/contended"),
        (NetConfig::mesh(16), "mesh/default-bw"),
        (NetConfig::mesh(16).with_link_service(64), "mesh/starved"),
        (
            NetConfig {
                topology: Topology::mesh_for(12),
                hop_latency: 5,
                link_service: 16,
                ..NetConfig::flat()
            },
            "mesh3x4/explicit",
        ),
    ];
    for (cfg, label) in topologies {
        for seed in 0..8u64 {
            let nodes = 16;
            let pattern = traffic(0x9E37_79B9 ^ seed, nodes, 2000, 40);
            let mut net = Network::new(cfg, nodes, 74);
            let deliveries = run(&mut net, &pattern);
            check_in_order(&pattern, &deliveries);
            // Under contention the starved configs must actually queue,
            // otherwise the property is vacuous.
            if cfg.link_service >= 16 {
                assert!(
                    net.summary().total_queue > 0,
                    "{label} seed {seed}: no queuing observed — test is vacuous"
                );
            }
        }
    }
}

#[test]
fn replay_is_bit_deterministic() {
    let pattern = traffic(42, 16, 3000, 25);
    let mut a = Network::new(NetConfig::mesh(16), 16, 74);
    let mut b = Network::new(NetConfig::mesh(16), 16, 74);
    assert_eq!(run(&mut a, &pattern), run(&mut b, &pattern));
    assert_eq!(a.summary(), b.summary());
}

#[test]
fn reset_restores_initial_behaviour() {
    let pattern = traffic(7, 9, 500, 30);
    let mut warm = Network::new(NetConfig::mesh(9).with_link_service(32), 9, 74);
    run(&mut warm, &pattern);
    warm.reset();
    let mut cold = Network::new(NetConfig::mesh(9).with_link_service(32), 9, 74);
    assert_eq!(run(&mut warm, &pattern), run(&mut cold, &pattern));
}

#[test]
fn flat_zero_load_matches_calibrated_travel() {
    // The degenerate crossbar must reproduce LatencyConfig::travel (§5.1
    // unloaded calibration): net_oneway between distinct nodes, zero
    // within a node, never any queuing.
    let oneway = 74u64;
    let mut net = Network::new(NetConfig::flat(), 16, oneway);
    let mut rng = SplitMix64::new(1);
    for _ in 0..5000 {
        let src = NodeId(rng.below(16) as u32);
        let dst = NodeId(rng.below(16) as u32);
        let now = Cycles(rng.below(1_000_000));
        let d = net.send(src, dst, now);
        let expect = if src == dst { 0 } else { oneway };
        assert_eq!(d.arrive, now + expect);
        assert_eq!(d.queue, Cycles::ZERO);
    }
    assert_eq!(net.summary().total_queue, 0);
    assert!(net.summary().links.is_empty());
}
