//! Deterministic message-fault injection for the interconnect.
//!
//! A [`FaultPlane`] sits beside the routing machinery and decides, per
//! message, whether the interconnect delivers it cleanly, drops it,
//! duplicates it, or holds it for extra cycles. Decisions come from a
//! [`SplitMix64`] stream seeded by [`FaultConfig::seed`], so a run's fault
//! pattern is a pure function of the configuration and the (deterministic)
//! message sequence — reproducible at any `--jobs`, in any process.
//!
//! With every rate at zero the plane is inert: [`FaultPlane::decide`]
//! returns [`FaultAction::Deliver`] without drawing from the RNG or
//! touching a counter, so fault-free runs stay byte-identical to the
//! pre-fault-plane golden traces.

use specrt_engine::SplitMix64;

/// One million — the denominator of every fault rate.
pub const PPM: u32 = 1_000_000;

/// Fault-injection rates, in parts per million of messages.
///
/// Rates are integers (not floats) so the config stays `Copy + Eq` and a
/// sweep cell can key a report deterministically. The three rates are
/// mutually exclusive per message: a drawn message is classified by one
/// draw against the cumulative thresholds, so `drop_ppm + dup_ppm +
/// delay_ppm` must not exceed [`PPM`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the decision stream. Two runs with the same seed, rates and
    /// message sequence fault the same messages.
    pub seed: u64,
    /// Probability (ppm) a message is silently dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) a message is delivered twice.
    pub dup_ppm: u32,
    /// Probability (ppm) a message is held for [`FaultConfig::delay_cycles`]
    /// extra cycles.
    pub delay_ppm: u32,
    /// Extra transit cycles a delayed message pays.
    pub delay_cycles: u64,
}

impl FaultConfig {
    /// The inert configuration: no faults, no RNG draws, byte-identical
    /// timings to a network without a fault plane.
    pub const fn none() -> Self {
        FaultConfig {
            seed: 0,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_cycles: 0,
        }
    }

    /// Whether any fault can ever fire.
    pub fn enabled(&self) -> bool {
        self.drop_ppm > 0 || self.dup_ppm > 0 || self.delay_ppm > 0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// What the fault plane decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// The message vanishes in transit; the sender sees nothing.
    Drop,
    /// The message arrives twice (the copy takes its own trip through the
    /// routing layer, so it lands at or after the original).
    Duplicate,
    /// The message arrives `.0` cycles later than routing alone dictates.
    Delay(u64),
}

/// Counts of faults actually injected, for reports and metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages classified (only counted while faults are enabled).
    pub decided: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Messages delayed.
    pub delayed: u64,
}

/// The seeded decision stream. Owned by a [`crate::Network`]; single-writer
/// by construction (one simulated machine owns one network), so the draw
/// order — and therefore the fault pattern — follows the simulation's own
/// deterministic message order.
#[derive(Debug)]
pub struct FaultPlane {
    cfg: FaultConfig,
    rng: SplitMix64,
    stats: FaultStats,
}

impl FaultPlane {
    /// Builds the plane for `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        debug_assert!(
            cfg.drop_ppm
                .saturating_add(cfg.dup_ppm)
                .saturating_add(cfg.delay_ppm)
                <= PPM,
            "fault rates exceed one million ppm"
        );
        FaultPlane {
            cfg,
            rng: SplitMix64::new(cfg.seed),
            stats: FaultStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Classifies the next message. Inert (no RNG draw, no counter) when
    /// faults are disabled.
    pub fn decide(&mut self) -> FaultAction {
        if !self.cfg.enabled() {
            return FaultAction::Deliver;
        }
        self.stats.decided += 1;
        let r = self.rng.below(u64::from(PPM)) as u32;
        if r < self.cfg.drop_ppm {
            self.stats.dropped += 1;
            FaultAction::Drop
        } else if r < self.cfg.drop_ppm + self.cfg.dup_ppm {
            self.stats.duplicated += 1;
            FaultAction::Duplicate
        } else if r < self.cfg.drop_ppm + self.cfg.dup_ppm + self.cfg.delay_ppm {
            self.stats.delayed += 1;
            FaultAction::Delay(self.cfg.delay_cycles)
        } else {
            FaultAction::Deliver
        }
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Rewinds the decision stream to its initial state (same seed, zeroed
    /// counters) — the fault-plane half of [`crate::Network::reset`].
    pub fn reset(&mut self) {
        self.rng = SplitMix64::new(self.cfg.seed);
        self.stats = FaultStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_is_inert() {
        let mut p = FaultPlane::new(FaultConfig::none());
        for _ in 0..100 {
            assert_eq!(p.decide(), FaultAction::Deliver);
        }
        assert_eq!(p.stats(), FaultStats::default());
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let cfg = FaultConfig {
            seed: 0x5eed,
            drop_ppm: 100_000,
            dup_ppm: 100_000,
            delay_ppm: 100_000,
            delay_cycles: 64,
        };
        let mut a = FaultPlane::new(cfg);
        let mut b = FaultPlane::new(cfg);
        let sa: Vec<_> = (0..1000).map(|_| a.decide()).collect();
        let sb: Vec<_> = (0..1000).map(|_| b.decide()).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().dropped > 0, "10% drop rate never fired in 1000");
        assert!(a.stats().duplicated > 0);
        assert!(a.stats().delayed > 0);
    }

    #[test]
    fn rates_roughly_respected() {
        let cfg = FaultConfig {
            seed: 7,
            drop_ppm: 500_000,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_cycles: 0,
        };
        let mut p = FaultPlane::new(cfg);
        for _ in 0..10_000 {
            p.decide();
        }
        let s = p.stats();
        assert_eq!(s.decided, 10_000);
        // 50% ± generous slack.
        assert!((4_000..6_000).contains(&s.dropped), "dropped={}", s.dropped);
    }

    #[test]
    fn reset_rewinds_the_stream() {
        let cfg = FaultConfig {
            seed: 42,
            drop_ppm: 250_000,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_cycles: 0,
        };
        let mut p = FaultPlane::new(cfg);
        let first: Vec<_> = (0..64).map(|_| p.decide()).collect();
        p.reset();
        assert_eq!(p.stats(), FaultStats::default());
        let again: Vec<_> = (0..64).map(|_| p.decide()).collect();
        assert_eq!(first, again, "reset must rewind to the seed");
    }

    #[test]
    fn delay_carries_configured_cycles() {
        let cfg = FaultConfig {
            seed: 1,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: PPM,
            delay_cycles: 96,
        };
        let mut p = FaultPlane::new(cfg);
        assert_eq!(p.decide(), FaultAction::Delay(96));
    }
}
