//! Deterministic message-fault injection for the interconnect.
//!
//! A [`FaultPlane`] sits beside the routing machinery and decides, per
//! message, whether the interconnect delivers it cleanly, drops it,
//! duplicates it, or holds it for extra cycles. Decisions come from a
//! [`SplitMix64`] stream seeded by [`FaultConfig::seed`], so a run's fault
//! pattern is a pure function of the configuration and the (deterministic)
//! message sequence — reproducible at any `--jobs`, in any process.
//!
//! With every rate at zero the plane is inert: [`FaultPlane::decide`]
//! returns [`FaultAction::Deliver`] without drawing from the RNG or
//! touching a counter, so fault-free runs stay byte-identical to the
//! pre-fault-plane golden traces.

use specrt_engine::SplitMix64;

/// One million — the denominator of every fault rate.
pub const PPM: u32 = 1_000_000;

/// The shape of a node-level fault.
///
/// Where the message rates perturb individual messages, a node fault takes
/// a whole processor/home node (or a link cut) out of the conversation:
/// every message to or from the affected node is force-dropped for the
/// fault's lifetime. The sender-side retry watchdog then observes the
/// silence and escalates to a `NodeUnreachable` failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// The node goes permanently silent at `at_cycle` — a crash. No
    /// message to or from it is ever delivered again.
    Crash,
    /// A GC-like stall: the node is silent for `for_cycles` cycles
    /// starting at `at_cycle`, then resumes. A retry watchdog whose
    /// backoff outlives the pause recovers without any abort.
    Pause {
        /// Length of the stall window in cycles.
        for_cycles: u64,
    },
    /// A link cut isolating the nodes below the cut point from those at or
    /// above it, for `for_cycles` cycles. Traffic within either group
    /// still flows.
    Partition {
        /// Length of the partition window in cycles.
        for_cycles: u64,
    },
}

/// One scheduled node-level fault.
///
/// The blocking decision is a pure function of this configuration and the
/// (src, dst, send-cycle) triple — no RNG draw, no mutable state — so an
/// armed node fault cannot perturb the message-rate decision stream, and a
/// run with `node_fault: None` is byte-identical to one without the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFaultConfig {
    /// What happens to the node.
    pub kind: NodeFaultKind,
    /// The affected node — for [`NodeFaultKind::Partition`] this is the
    /// cut point: nodes `< node` are severed from nodes `>= node`.
    pub node: u32,
    /// First cycle at which the fault is in force.
    pub at_cycle: u64,
}

impl NodeFaultConfig {
    /// Whether a message sent from `src` to `dst` at cycle `at` is
    /// swallowed by this fault.
    pub fn blocks(&self, src: u32, dst: u32, at: u64) -> bool {
        let in_window = |len: u64| at >= self.at_cycle && at - self.at_cycle < len;
        match self.kind {
            NodeFaultKind::Crash => at >= self.at_cycle && (src == self.node || dst == self.node),
            NodeFaultKind::Pause { for_cycles } => {
                in_window(for_cycles) && (src == self.node || dst == self.node)
            }
            NodeFaultKind::Partition { for_cycles } => {
                in_window(for_cycles) && (src < self.node) != (dst < self.node)
            }
        }
    }

    /// The node a sender should suspect when its retries into this fault
    /// are exhausted: the dead/paused node itself, or — for a partition —
    /// the unreachable destination.
    pub fn suspect(&self, dst: u32) -> u32 {
        match self.kind {
            NodeFaultKind::Crash | NodeFaultKind::Pause { .. } => self.node,
            NodeFaultKind::Partition { .. } => dst,
        }
    }

    /// Stable label of the fault kind, for reports and traces.
    pub fn kind_label(&self) -> &'static str {
        match self.kind {
            NodeFaultKind::Crash => "crash",
            NodeFaultKind::Pause { .. } => "pause",
            NodeFaultKind::Partition { .. } => "partition",
        }
    }
}

/// Fault-injection rates, in parts per million of messages.
///
/// Rates are integers (not floats) so the config stays `Copy + Eq` and a
/// sweep cell can key a report deterministically. The three rates are
/// mutually exclusive per message: a drawn message is classified by one
/// draw against the cumulative thresholds, so `drop_ppm + dup_ppm +
/// delay_ppm` must not exceed [`PPM`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the decision stream. Two runs with the same seed, rates and
    /// message sequence fault the same messages.
    pub seed: u64,
    /// Probability (ppm) a message is silently dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) a message is delivered twice.
    pub dup_ppm: u32,
    /// Probability (ppm) a message is held for [`FaultConfig::delay_cycles`]
    /// extra cycles.
    pub delay_ppm: u32,
    /// Extra transit cycles a delayed message pays.
    pub delay_cycles: u64,
    /// An optional scheduled node-level fault (crash / pause / partition).
    /// Checked before the message-rate draw and entirely stateless, so
    /// `None` leaves every message-rate decision stream untouched.
    pub node_fault: Option<NodeFaultConfig>,
}

impl FaultConfig {
    /// The inert configuration: no faults, no RNG draws, byte-identical
    /// timings to a network without a fault plane.
    pub const fn none() -> Self {
        FaultConfig {
            seed: 0,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_cycles: 0,
            node_fault: None,
        }
    }

    /// Whether any fault can ever fire.
    pub fn enabled(&self) -> bool {
        self.drop_ppm > 0 || self.dup_ppm > 0 || self.delay_ppm > 0 || self.node_fault.is_some()
    }

    /// Checks every rate against the accepted range. Each rate must be in
    /// `0..=1_000_000` ppm and the three rates together must not exceed
    /// [`PPM`] (one classification draw covers all three).
    pub fn validate(&self) -> Result<(), String> {
        for (name, ppm) in [
            ("drop_ppm", self.drop_ppm),
            ("dup_ppm", self.dup_ppm),
            ("delay_ppm", self.delay_ppm),
        ] {
            if ppm > PPM {
                return Err(format!(
                    "fault rate {name}={ppm} out of range (accepted range: 0..=1_000_000 ppm)"
                ));
            }
        }
        let sum = u64::from(self.drop_ppm) + u64::from(self.dup_ppm) + u64::from(self.delay_ppm);
        if sum > u64::from(PPM) {
            return Err(format!(
                "fault rates sum to {sum} ppm (drop_ppm + dup_ppm + delay_ppm must not \
                 exceed 1_000_000 ppm)"
            ));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// What the fault plane decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// The message vanishes in transit; the sender sees nothing.
    Drop,
    /// The message arrives twice (the copy takes its own trip through the
    /// routing layer, so it lands at or after the original).
    Duplicate,
    /// The message arrives `.0` cycles later than routing alone dictates.
    Delay(u64),
}

/// Counts of faults actually injected, for reports and metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages classified (only counted while faults are enabled).
    pub decided: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Messages delayed.
    pub delayed: u64,
}

/// The seeded decision stream. Owned by a [`crate::Network`]; single-writer
/// by construction (one simulated machine owns one network), so the draw
/// order — and therefore the fault pattern — follows the simulation's own
/// deterministic message order.
#[derive(Debug)]
pub struct FaultPlane {
    cfg: FaultConfig,
    rng: SplitMix64,
    stats: FaultStats,
}

impl FaultPlane {
    /// Builds the plane for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside the accepted range (see
    /// [`FaultConfig::validate`]); callers building configs from user
    /// input should call `validate()` first and surface the error.
    pub fn new(cfg: FaultConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        FaultPlane {
            cfg,
            rng: SplitMix64::new(cfg.seed),
            stats: FaultStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Classifies the next message. Inert (no RNG draw, no counter) when
    /// every message rate is zero — a node-fault-only configuration leaves
    /// the decision stream untouched, since node faults are decided
    /// statelessly before this draw.
    pub fn decide(&mut self) -> FaultAction {
        if self.cfg.drop_ppm == 0 && self.cfg.dup_ppm == 0 && self.cfg.delay_ppm == 0 {
            return FaultAction::Deliver;
        }
        self.stats.decided += 1;
        let r = self.rng.below(u64::from(PPM)) as u32;
        if r < self.cfg.drop_ppm {
            self.stats.dropped += 1;
            FaultAction::Drop
        } else if r < self.cfg.drop_ppm + self.cfg.dup_ppm {
            self.stats.duplicated += 1;
            FaultAction::Duplicate
        } else if r < self.cfg.drop_ppm + self.cfg.dup_ppm + self.cfg.delay_ppm {
            self.stats.delayed += 1;
            FaultAction::Delay(self.cfg.delay_cycles)
        } else {
            FaultAction::Deliver
        }
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Rewinds the decision stream to its initial state (same seed, zeroed
    /// counters) — the fault-plane half of [`crate::Network::reset`].
    pub fn reset(&mut self) {
        self.rng = SplitMix64::new(self.cfg.seed);
        self.stats = FaultStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_is_inert() {
        let mut p = FaultPlane::new(FaultConfig::none());
        for _ in 0..100 {
            assert_eq!(p.decide(), FaultAction::Deliver);
        }
        assert_eq!(p.stats(), FaultStats::default());
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let cfg = FaultConfig {
            seed: 0x5eed,
            drop_ppm: 100_000,
            dup_ppm: 100_000,
            delay_ppm: 100_000,
            delay_cycles: 64,
            node_fault: None,
        };
        let mut a = FaultPlane::new(cfg);
        let mut b = FaultPlane::new(cfg);
        let sa: Vec<_> = (0..1000).map(|_| a.decide()).collect();
        let sb: Vec<_> = (0..1000).map(|_| b.decide()).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().dropped > 0, "10% drop rate never fired in 1000");
        assert!(a.stats().duplicated > 0);
        assert!(a.stats().delayed > 0);
    }

    #[test]
    fn rates_roughly_respected() {
        let cfg = FaultConfig {
            seed: 7,
            drop_ppm: 500_000,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_cycles: 0,
            node_fault: None,
        };
        let mut p = FaultPlane::new(cfg);
        for _ in 0..10_000 {
            p.decide();
        }
        let s = p.stats();
        assert_eq!(s.decided, 10_000);
        // 50% ± generous slack.
        assert!((4_000..6_000).contains(&s.dropped), "dropped={}", s.dropped);
    }

    #[test]
    fn reset_rewinds_the_stream() {
        let cfg = FaultConfig {
            seed: 42,
            drop_ppm: 250_000,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_cycles: 0,
            node_fault: None,
        };
        let mut p = FaultPlane::new(cfg);
        let first: Vec<_> = (0..64).map(|_| p.decide()).collect();
        p.reset();
        assert_eq!(p.stats(), FaultStats::default());
        let again: Vec<_> = (0..64).map(|_| p.decide()).collect();
        assert_eq!(first, again, "reset must rewind to the seed");
    }

    #[test]
    fn delay_carries_configured_cycles() {
        let cfg = FaultConfig {
            seed: 1,
            drop_ppm: 0,
            dup_ppm: 0,
            delay_ppm: PPM,
            delay_cycles: 96,
            node_fault: None,
        };
        let mut p = FaultPlane::new(cfg);
        assert_eq!(p.decide(), FaultAction::Delay(96));
    }

    #[test]
    fn out_of_range_rates_are_rejected_with_the_accepted_range() {
        let cfg = FaultConfig {
            drop_ppm: PPM + 1,
            ..FaultConfig::none()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("drop_ppm"), "{err}");
        assert!(err.contains("0..=1_000_000"), "{err}");
        let cfg = FaultConfig {
            drop_ppm: 600_000,
            dup_ppm: 600_000,
            ..FaultConfig::none()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("sum"), "{err}");
        assert!(FaultConfig::none().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plane_construction_panics_on_invalid_rates() {
        let _ = FaultPlane::new(FaultConfig {
            dup_ppm: PPM + 7,
            ..FaultConfig::none()
        });
    }

    #[test]
    fn node_fault_only_plane_draws_no_rng() {
        let cfg = FaultConfig {
            node_fault: Some(NodeFaultConfig {
                kind: NodeFaultKind::Crash,
                node: 1,
                at_cycle: 0,
            }),
            ..FaultConfig::none()
        };
        assert!(cfg.enabled());
        let mut p = FaultPlane::new(cfg);
        for _ in 0..64 {
            assert_eq!(p.decide(), FaultAction::Deliver);
        }
        assert_eq!(p.stats(), FaultStats::default());
    }

    #[test]
    fn crash_blocks_both_directions_forever() {
        let f = NodeFaultConfig {
            kind: NodeFaultKind::Crash,
            node: 2,
            at_cycle: 100,
        };
        assert!(!f.blocks(2, 0, 99), "before onset");
        assert!(f.blocks(2, 0, 100), "from the node");
        assert!(f.blocks(0, 2, 1_000_000), "to the node, forever");
        assert!(!f.blocks(0, 1, 500), "bystanders unaffected");
        assert_eq!(f.suspect(0), 2);
    }

    #[test]
    fn pause_blocks_only_inside_the_window() {
        let f = NodeFaultConfig {
            kind: NodeFaultKind::Pause { for_cycles: 50 },
            node: 1,
            at_cycle: 100,
        };
        assert!(!f.blocks(1, 0, 99));
        assert!(f.blocks(1, 0, 100));
        assert!(f.blocks(0, 1, 149));
        assert!(!f.blocks(0, 1, 150), "window is half-open");
        assert_eq!(f.suspect(0), 1);
    }

    #[test]
    fn partition_cuts_only_cross_group_traffic() {
        let f = NodeFaultConfig {
            kind: NodeFaultKind::Partition { for_cycles: 80 },
            node: 2,
            at_cycle: 10,
        };
        assert!(f.blocks(0, 3, 10), "cross-cut");
        assert!(f.blocks(3, 1, 89), "cross-cut, other direction");
        assert!(!f.blocks(0, 1, 50), "within the low group");
        assert!(!f.blocks(2, 3, 50), "within the high group");
        assert!(!f.blocks(0, 3, 90), "after the window");
        assert_eq!(f.suspect(3), 3, "partition suspects the destination");
    }
}
