//! specrt-net: the machine's interconnect model.
//!
//! The paper calibrates its memory system against an *unloaded* machine
//! (§5.1: latencies "correspond to an unloaded machine; they increase with
//! resource contention") and abstracts the global network away as a
//! constant latency. This crate replaces that abstraction with a real —
//! still deterministic, still discrete-event — interconnect:
//!
//! * pluggable [`Topology`]: the original flat crossbar as the degenerate
//!   case, plus a 2D mesh with dimension-order routing;
//! * finite link bandwidth: each message occupies every link it crosses
//!   for [`NetConfig::link_service`] cycles, so traffic queues
//!   ([`specrt_engine::Resource`]-style FIFO occupancy);
//! * per-message hop and queue accounting surfaced through
//!   [`NetSummary`] / [`LinkStat`];
//! * a hard in-order delivery guarantee per (src, dst) pair — the
//!   invariant the paper's protocol algorithms assume (§3.2).
//!
//! [`NetConfig::flat()`] at zero load reproduces the seed's
//! `LatencyConfig::travel` timings exactly, so every calibrated latency
//! test keeps passing byte-identically; a mesh with constrained bandwidth
//! turns the same experiments into contention studies.

#![warn(missing_docs)]

mod fault;
mod network;
mod topology;

pub use fault::{
    FaultAction, FaultConfig, FaultPlane, FaultStats, NodeFaultConfig, NodeFaultKind, PPM,
};
pub use network::{Delivery, LinkStat, NetConfig, NetSummary, Network, DEFAULT_MESH_LINK_SERVICE};
pub use topology::{LinkId, Topology};
