//! The contended interconnect: configuration, link occupancy, delivery.

use std::collections::BTreeMap;

use specrt_engine::{Cycles, Resource};
use specrt_mem::NodeId;

use crate::fault::{FaultAction, FaultConfig, FaultPlane, FaultStats};
use crate::topology::{LinkId, Topology};

/// Default cycles a mesh link is occupied per message (a 64-byte line at
/// 16 bytes/cycle plus header). `--link-bw` / [`NetConfig::link_service`]
/// override it.
pub const DEFAULT_MESH_LINK_SERVICE: u64 = 4;

/// Interconnect configuration, carried inside the memory-system config.
///
/// The *unloaded calibration* stays in the latency model (`LatencyConfig`,
/// §5.1): a flat network's one-way latency is always the calibrated
/// `net_oneway`, and a mesh with `hop_latency == 0` derives its per-hop
/// latency from that same calibration (`net_oneway / mean_hops`), so the
/// average unloaded remote access still lands on the paper's numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Shape of the interconnect.
    pub topology: Topology,
    /// Per-hop wire+router latency in cycles. Ignored for
    /// [`Topology::Flat`] (the calibrated one-way latency applies); `0` on
    /// a mesh means "derive from the calibration" (see
    /// [`Network::new`]).
    pub hop_latency: u64,
    /// Cycles each message occupies every link it crosses — the inverse
    /// bandwidth. `0` models infinite bandwidth (no contention), which is
    /// the seed's abstraction.
    pub link_service: u64,
    /// Message-fault injection rates ([`FaultConfig::none`] = a perfect
    /// network, the default).
    pub faults: FaultConfig,
}

impl NetConfig {
    /// The degenerate constant-latency crossbar: the seed's network
    /// abstraction, bit-identical to the pre-`specrt-net` timings.
    pub fn flat() -> Self {
        NetConfig {
            topology: Topology::Flat,
            hop_latency: 0,
            link_service: 0,
            faults: FaultConfig::none(),
        }
    }

    /// A 2D mesh sized for `nodes` nodes with calibration-derived hop
    /// latency and the default link bandwidth.
    pub fn mesh(nodes: u32) -> Self {
        NetConfig {
            topology: Topology::mesh_for(nodes),
            hop_latency: 0,
            link_service: DEFAULT_MESH_LINK_SERVICE,
            faults: FaultConfig::none(),
        }
    }

    /// Same topology with a different per-message link occupancy.
    pub fn with_link_service(mut self, service: u64) -> Self {
        self.link_service = service;
        self
    }

    /// Same network with a fault plane attached.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Whether this network can exhibit contention or topology-dependent
    /// latency at all (anything beyond the flat infinite-bandwidth
    /// abstraction).
    pub fn is_contended(&self) -> bool {
        self.link_service > 0 || !matches!(self.topology, Topology::Flat)
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::flat()
    }
}

/// What the network did with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the message reaches its destination.
    pub arrive: Cycles,
    /// Links crossed.
    pub hops: u32,
    /// The pair's zero-load transit time (hops × per-hop cost).
    pub unloaded: Cycles,
    /// Delay beyond `unloaded`: link queuing plus any in-order hold-back.
    pub queue: Cycles,
}

impl Delivery {
    /// Total transit time (`arrive - send`).
    pub fn total(&self) -> Cycles {
        self.unloaded + self.queue
    }
}

/// Occupancy and queuing observed on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStat {
    /// The link.
    pub link: LinkId,
    /// Cycles the link spent serving messages (utilization numerator).
    pub busy: u64,
    /// Cycles messages spent waiting for the link.
    pub queued: u64,
    /// Messages that crossed the link.
    pub msgs: u64,
}

/// Aggregate view of a run's network traffic, cheap to clone into run
/// results and reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetSummary {
    /// Topology label (`flat`, `mesh 4x4`).
    pub topology: String,
    /// Node count.
    pub nodes: u32,
    /// Remote messages routed.
    pub messages: u64,
    /// Intra-node messages (free; never touch the network).
    pub local_messages: u64,
    /// Total links crossed by all messages.
    pub total_hops: u64,
    /// Total cycles of queuing (link waits + in-order hold-back).
    pub total_queue: u64,
    /// Per-link occupancy, densest first is *not* guaranteed — sorted by
    /// link id; use [`NetSummary::hotspot`] for the worst link.
    pub links: Vec<LinkStat>,
}

impl NetSummary {
    /// The most contended link: max queued cycles, ties broken by busy
    /// cycles then link id (deterministic).
    pub fn hotspot(&self) -> Option<&LinkStat> {
        self.links
            .iter()
            .max_by_key(|l| (l.queued, l.busy, std::cmp::Reverse(l.link)))
    }

    /// Mean hops per remote message.
    pub fn mean_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.messages as f64
        }
    }
}

/// The stateful interconnect one simulated machine owns.
///
/// Guarantees:
///
/// * **Determinism** — delivery times are a pure function of the send
///   history; no randomness, no host-order dependence.
/// * **In-order per (src, dst)** — messages between the same pair of nodes
///   arrive in send order (§3.2's standing assumption). Structurally, a
///   pair's messages follow one deterministic path of FIFO links; on top
///   of that, an explicit hold-back clamps each delivery to no earlier
///   than the pair's previous one.
/// * **Degenerate flat case** — `NetConfig::flat()` reproduces the seed's
///   constant-latency `travel()` exactly: latency `net_oneway` between
///   distinct nodes, zero within a node, zero queuing. Sends then mutate
///   nothing but counters, so timings are byte-identical to the
///   pre-network abstraction.
#[derive(Debug)]
pub struct Network {
    cfg: NetConfig,
    nodes: u32,
    /// Per-hop latency actually applied (flat: the calibrated one-way).
    hop_latency: u64,
    links: BTreeMap<LinkId, Resource>,
    /// Last delivery time per (src, dst), for the in-order hold-back.
    last_arrival: BTreeMap<(u32, u32), Cycles>,
    faults: FaultPlane,
    messages: u64,
    local_messages: u64,
    total_hops: u64,
    total_queue: Cycles,
}

impl Network {
    /// Builds the network for `nodes` nodes. `calibrated_oneway` is the
    /// latency model's unloaded one-way network latency (`net_oneway`,
    /// §5.1): it *is* the flat one-way latency, and it seeds the mesh
    /// per-hop latency when `cfg.hop_latency` is zero (per-hop =
    /// `net_oneway / mean_hops`, so the mesh's average unloaded transit
    /// matches the calibration).
    pub fn new(cfg: NetConfig, nodes: u32, calibrated_oneway: u64) -> Self {
        let hop_latency = match cfg.topology {
            Topology::Flat => calibrated_oneway,
            Topology::Mesh2D { .. } => {
                if cfg.hop_latency > 0 {
                    cfg.hop_latency
                } else {
                    let mean = cfg.topology.mean_hops(nodes).max(1.0);
                    ((calibrated_oneway as f64 / mean).round() as u64).max(1)
                }
            }
        };
        Network {
            cfg,
            nodes,
            hop_latency,
            links: BTreeMap::new(),
            last_arrival: BTreeMap::new(),
            faults: FaultPlane::new(cfg.faults),
            messages: 0,
            local_messages: 0,
            total_hops: 0,
            total_queue: Cycles::ZERO,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The per-hop latency actually applied (after calibration).
    pub fn hop_latency(&self) -> u64 {
        self.hop_latency
    }

    /// Classifies the next *faultable* message (drop / duplicate / delay /
    /// deliver). The protocol layer calls this once per asynchronous
    /// message before routing; synchronous request/reply transactions are
    /// not subjected to faults (they model CPU-blocking accesses whose loss
    /// would hang the simulated processor, not a recoverable message).
    /// Inert — no RNG draw, no state change — when faults are disabled.
    pub fn fault_decide(&mut self) -> FaultAction {
        self.faults.decide()
    }

    /// Faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// Whether an armed node-level fault swallows a message sent from
    /// `src` to `dst` at cycle `at`. Stateless — a pure function of the
    /// configuration — so it never perturbs the message-rate decision
    /// stream; returns `None` when the message goes through, and the
    /// suspected node (for watchdog escalation) when it is blocked.
    pub fn node_fault_blocks(&self, src: NodeId, dst: NodeId, at: Cycles) -> Option<u32> {
        let nf = self.cfg.faults.node_fault?;
        if nf.blocks(src.0, dst.0, at.raw()) {
            Some(nf.suspect(dst.0))
        } else {
            None
        }
    }

    /// Zero-load transit time from `src` to `dst`.
    pub fn unloaded(&self, src: NodeId, dst: NodeId) -> Cycles {
        let hops = u64::from(self.cfg.topology.hops(src, dst));
        Cycles(hops * (self.hop_latency + self.cfg.link_service))
    }

    /// Routes one message, reserving every link it crosses, and returns
    /// the delivery. The caller supplies the send time; per-link waits and
    /// the in-order hold-back accumulate into [`Delivery::queue`].
    pub fn send(&mut self, src: NodeId, dst: NodeId, now: Cycles) -> Delivery {
        let _prof = specrt_prof::scope("net.route");
        if src == dst {
            self.local_messages += 1;
            return Delivery {
                arrive: now,
                hops: 0,
                unloaded: Cycles::ZERO,
                queue: Cycles::ZERO,
            };
        }
        let unloaded = self.unloaded(src, dst);
        let hops = self.cfg.topology.hops(src, dst);
        self.messages += 1;
        self.total_hops += u64::from(hops);

        if !self.cfg.is_contended() {
            // Degenerate crossbar: a pure constant-latency function. No
            // link state, no hold-back — order per pair follows from the
            // constant latency itself.
            return Delivery {
                arrive: now + unloaded,
                hops,
                unloaded,
                queue: Cycles::ZERO,
            };
        }

        let service = Cycles(self.cfg.link_service);
        let mut t = now;
        for link in self.cfg.topology.route(src, dst) {
            if self.cfg.link_service > 0 {
                let done = self.links.entry(link).or_default().acquire(t, service);
                t = done;
            }
            t += self.hop_latency;
        }
        // In-order per (src, dst): never deliver before the pair's
        // previous message.
        let slot = self.last_arrival.entry((src.0, dst.0)).or_default();
        let arrive = t.max(*slot);
        *slot = arrive;
        let queue = arrive.saturating_sub(now).saturating_sub(unloaded);
        self.total_queue += queue;
        Delivery {
            arrive,
            hops,
            unloaded,
            queue,
        }
    }

    /// Delivery time a message sent now would get, *without* reserving
    /// anything. Used by the protocol to drain in-flight messages up to a
    /// transaction's arrival before reserving the transaction's own path.
    pub fn probe(&self, src: NodeId, dst: NodeId, now: Cycles) -> Cycles {
        if src == dst {
            return now;
        }
        if !self.cfg.is_contended() {
            return now + self.unloaded(src, dst);
        }
        let service = Cycles(self.cfg.link_service);
        let mut t = now;
        for link in self.cfg.topology.route(src, dst) {
            if self.cfg.link_service > 0 {
                let start = self
                    .links
                    .get(&link)
                    .map(|r| r.next_free())
                    .unwrap_or(Cycles::ZERO)
                    .max(t);
                t = start + service;
            }
            t += self.hop_latency;
        }
        t.max(
            self.last_arrival
                .get(&(src.0, dst.0))
                .copied()
                .unwrap_or(Cycles::ZERO),
        )
    }

    /// Snapshot of the traffic observed so far.
    pub fn summary(&self) -> NetSummary {
        NetSummary {
            topology: self.cfg.topology.label(),
            nodes: self.nodes,
            messages: self.messages,
            local_messages: self.local_messages,
            total_hops: self.total_hops,
            total_queue: self.total_queue.raw(),
            links: self
                .links
                .iter()
                .filter(|(_, r)| r.requests() > 0)
                .map(|(link, r)| LinkStat {
                    link: *link,
                    busy: r.total_busy().raw(),
                    queued: r.total_queued().raw(),
                    msgs: r.requests(),
                })
                .collect(),
        }
    }

    /// Forgets all reservations, hold-backs and statistics, and rewinds
    /// the fault plane to its seed.
    pub fn reset(&mut self) {
        self.links.clear();
        self.last_arrival.clear();
        self.faults.reset();
        self.messages = 0;
        self.local_messages = 0;
        self.total_hops = 0;
        self.total_queue = Cycles::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N15: NodeId = NodeId(15);

    #[test]
    fn flat_matches_constant_latency_abstraction() {
        let mut net = Network::new(NetConfig::flat(), 16, 74);
        assert_eq!(net.send(N0, N0, Cycles(100)).arrive, Cycles(100));
        let d = net.send(N0, N1, Cycles(100));
        assert_eq!(d.arrive, Cycles(174));
        assert_eq!(d.queue, Cycles::ZERO);
        assert_eq!(d.hops, 1);
        // Infinite bandwidth: a burst to the same pair never queues.
        for i in 0..8 {
            assert_eq!(net.send(N0, N1, Cycles(200 + i)).queue, Cycles::ZERO);
        }
        assert!(net.summary().links.is_empty(), "no link ever occupied");
    }

    #[test]
    fn mesh_calibrates_hop_latency_from_oneway() {
        let net = Network::new(NetConfig::mesh(16), 16, 74);
        // 4x4 mesh mean distance ≈ 2.67 → per-hop ≈ 28.
        assert_eq!(net.hop_latency(), 28);
        // Explicit hop latency wins.
        let cfg = NetConfig {
            hop_latency: 10,
            ..NetConfig::mesh(16)
        };
        assert_eq!(Network::new(cfg, 16, 74).hop_latency(), 10);
    }

    #[test]
    fn mesh_latency_scales_with_distance() {
        let mut net = Network::new(NetConfig::mesh(16).with_link_service(0), 16, 74);
        let near = net.send(N0, N1, Cycles(0));
        let far = net.send(N0, N15, Cycles(0));
        assert_eq!(near.hops, 1);
        assert_eq!(far.hops, 6);
        assert_eq!(far.unloaded.raw(), 6 * net.hop_latency());
        assert!(far.arrive > near.arrive);
    }

    #[test]
    fn constrained_links_queue_and_report() {
        let mut net = Network::new(NetConfig::mesh(16).with_link_service(32), 16, 74);
        // Two messages sharing the whole path at the same instant: the
        // second pipelines behind the first, one service slot later.
        let a = net.send(N0, N15, Cycles(0));
        let b = net.send(N0, N15, Cycles(0));
        assert_eq!(a.queue, Cycles::ZERO);
        assert_eq!(b.queue, Cycles(32), "pipelined one slot behind a");
        assert_eq!(b.arrive, a.arrive + 32u64);
        let s = net.summary();
        assert_eq!(s.messages, 2);
        assert_eq!(s.total_hops, 12);
        assert!(s.total_queue > 0);
        let hot = s.hotspot().expect("links were used");
        assert_eq!(hot.msgs, 2);
        assert!(hot.queued > 0);
    }

    #[test]
    fn in_order_per_pair_holds_even_for_regressing_sends() {
        let mut net = Network::new(NetConfig::mesh(16).with_link_service(16), 16, 74);
        let a = net.send(N0, N15, Cycles(1000));
        // A later call with an earlier send time must not overtake.
        let b = net.send(N0, N15, Cycles(0));
        assert!(b.arrive >= a.arrive, "{:?} overtook {:?}", b, a);
    }

    #[test]
    fn probe_does_not_reserve() {
        let mut net = Network::new(NetConfig::mesh(16).with_link_service(16), 16, 74);
        let p1 = net.probe(N0, N15, Cycles(0));
        let p2 = net.probe(N0, N15, Cycles(0));
        assert_eq!(p1, p2, "probing must not change state");
        let d = net.send(N0, N15, Cycles(0));
        assert_eq!(d.arrive, p1, "probe predicted the real delivery");
        assert!(net.probe(N0, N15, Cycles(0)) > p1, "send reserved links");
    }

    #[test]
    fn reset_clears_traffic() {
        let mut net = Network::new(NetConfig::mesh(16), 16, 74);
        net.send(N0, N15, Cycles(0));
        net.reset();
        let s = net.summary();
        assert_eq!(s.messages, 0);
        assert!(s.links.is_empty());
    }
}
