//! Interconnect topologies and deterministic routing.
//!
//! Two topologies are modelled:
//!
//! * [`Topology::Flat`] — the seed's constant-latency crossbar: every pair
//!   of distinct nodes is one "hop" apart and messages never share a wire.
//!   This is the degenerate case the paper uses ("the global network ...
//!   is abstracted away as a constant latency", §5.1).
//! * [`Topology::Mesh2D`] — a `cols × rows` 2D mesh with dimension-order
//!   (X-then-Y) routing, the usual layout of the CC-NUMA machines the
//!   paper targets. Messages cross one directed link per hop; links are
//!   finite-bandwidth resources, so traffic *contends*.
//!
//! Routing is a pure function of `(topology, src, dst)`, which together
//! with FIFO links is what makes per-(src, dst) delivery order a
//! structural invariant rather than a lucky accident (§3.2: "All
//! algorithms assume in-order delivery of messages").

use specrt_mem::NodeId;

/// A directed link of the interconnect, identified by its endpoints.
///
/// For [`Topology::Mesh2D`] the endpoints are grid-adjacent nodes; for
/// [`Topology::Flat`] the only "link" a message crosses is its source
/// node's injection port, written `from == to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node (equal to `from` for a flat injection port).
    pub to: NodeId,
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.from == self.to {
            write!(f, "n{}(inject)", self.from.0)
        } else {
            write!(f, "n{}->n{}", self.from.0, self.to.0)
        }
    }
}

/// The shape of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Constant-latency crossbar: no shared wires, every remote pair one
    /// hop apart. The seed's network abstraction.
    Flat,
    /// `cols × rows` 2D mesh, dimension-order (X then Y) routed. Node `i`
    /// sits at `(i % cols, i / cols)`.
    Mesh2D {
        /// Grid width.
        cols: u32,
        /// Grid height.
        rows: u32,
    },
}

impl Topology {
    /// The squarest 2D mesh holding `nodes` nodes (`cols >= rows`, last row
    /// possibly partial).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn mesh_for(nodes: u32) -> Topology {
        assert!(nodes > 0, "a mesh needs at least one node");
        let mut cols = 1u32;
        while cols * cols < nodes {
            cols += 1;
        }
        let rows = nodes.div_ceil(cols);
        Topology::Mesh2D { cols, rows }
    }

    /// Grid coordinates of `node` (flat topologies place everyone at the
    /// origin).
    pub fn coords(&self, node: NodeId) -> (u32, u32) {
        match *self {
            Topology::Flat => (0, 0),
            Topology::Mesh2D { cols, .. } => (node.0 % cols, node.0 / cols),
        }
    }

    /// Number of hops a message from `src` to `dst` crosses: Manhattan
    /// distance on the mesh, `1` for distinct flat nodes, `0` within a
    /// node.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        if src == dst {
            return 0;
        }
        match *self {
            Topology::Flat => 1,
            Topology::Mesh2D { .. } => {
                let (sx, sy) = self.coords(src);
                let (dx, dy) = self.coords(dst);
                sx.abs_diff(dx) + sy.abs_diff(dy)
            }
        }
    }

    /// Average hop count over all ordered pairs of distinct nodes — the
    /// quantity that maps the unloaded calibration (one constant one-way
    /// latency) onto per-hop link parameters.
    pub fn mean_hops(&self, nodes: u32) -> f64 {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for s in 0..nodes {
            for d in 0..nodes {
                if s != d {
                    total += u64::from(self.hops(NodeId(s), NodeId(d)));
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            return 0.0;
        }
        total as f64 / pairs as f64
    }

    /// The directed links a message from `src` to `dst` crosses, in order.
    /// Dimension-order: walk X to the destination column, then Y to the
    /// destination row. Flat messages cross only the source's injection
    /// port; intra-node messages cross nothing.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        if src == dst {
            return Vec::new();
        }
        match *self {
            Topology::Flat => vec![LinkId { from: src, to: src }],
            Topology::Mesh2D { cols, .. } => {
                let (mut x, mut y) = self.coords(src);
                let (dx, dy) = self.coords(dst);
                let mut path = Vec::with_capacity((x.abs_diff(dx) + y.abs_diff(dy)) as usize);
                let mut cur = src;
                while x != dx {
                    x = if x < dx { x + 1 } else { x - 1 };
                    let next = NodeId(y * cols + x);
                    path.push(LinkId {
                        from: cur,
                        to: next,
                    });
                    cur = next;
                }
                while y != dy {
                    y = if y < dy { y + 1 } else { y - 1 };
                    let next = NodeId(y * cols + x);
                    path.push(LinkId {
                        from: cur,
                        to: next,
                    });
                    cur = next;
                }
                path
            }
        }
    }

    /// Human-readable label (`flat`, `mesh 4x4`).
    pub fn label(&self) -> String {
        match *self {
            Topology::Flat => "flat".to_string(),
            Topology::Mesh2D { cols, rows } => format!("mesh {cols}x{rows}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_for_is_squarest() {
        assert_eq!(
            Topology::mesh_for(16),
            Topology::Mesh2D { cols: 4, rows: 4 }
        );
        assert_eq!(Topology::mesh_for(8), Topology::Mesh2D { cols: 3, rows: 3 });
        assert_eq!(Topology::mesh_for(1), Topology::Mesh2D { cols: 1, rows: 1 });
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let t = Topology::mesh_for(16);
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(5)), 2); // (0,0) -> (1,1)
        assert_eq!(t.hops(NodeId(0), NodeId(15)), 6); // (0,0) -> (3,3)
        assert_eq!(Topology::Flat.hops(NodeId(0), NodeId(9)), 1);
        assert_eq!(Topology::Flat.hops(NodeId(3), NodeId(3)), 0);
    }

    #[test]
    fn route_is_dimension_ordered_and_adjacent() {
        let t = Topology::mesh_for(16);
        let path = t.route(NodeId(0), NodeId(15));
        assert_eq!(path.len(), 6);
        // X first: 0 -> 1 -> 2 -> 3, then Y: 3 -> 7 -> 11 -> 15.
        let nodes: Vec<u32> = path.iter().map(|l| l.to.0).collect();
        assert_eq!(nodes, vec![1, 2, 3, 7, 11, 15]);
        for l in &path {
            assert_eq!(t.hops(l.from, l.to), 1, "link {l} must join neighbours");
        }
    }

    #[test]
    fn route_endpoints_match() {
        let t = Topology::mesh_for(12);
        for s in 0..12u32 {
            for d in 0..12u32 {
                let path = t.route(NodeId(s), NodeId(d));
                assert_eq!(path.len() as u32, t.hops(NodeId(s), NodeId(d)));
                if s != d {
                    assert_eq!(path.first().unwrap().from, NodeId(s));
                    assert_eq!(path.last().unwrap().to, NodeId(d));
                }
            }
        }
    }

    #[test]
    fn mean_hops_flat_is_one() {
        assert!((Topology::Flat.mean_hops(16) - 1.0).abs() < 1e-9);
        let m = Topology::mesh_for(16).mean_hops(16);
        assert!(m > 2.0 && m < 3.0, "4x4 mesh mean distance ~2.67, got {m}");
    }
}
