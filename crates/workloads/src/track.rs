//! Track — `nlfilt.do300` (§5.2).
//!
//! Paper facts reproduced: 56 invocations averaging ~480 iterations, four
//! arrays under the non-privatization schemes with 4- and 8-byte elements,
//! the fraction of accesses to the tested arrays varying from 0% to 44%
//! across invocations, load imbalance (so the hardware scheme uses
//! dynamically-scheduled small blocks while the processor-wise software
//! test is stuck with static scheduling), and — crucially — **5 of the 56
//! invocations are not fully parallel**: adjacent iterations touch the same
//! element, so the iteration-wise software test fails while the
//! processor-wise software test and the hardware scheme (with block
//! scheduling keeping adjacent iterations on one processor) pass.

use specrt_ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt_machine::{ArrayDecl, LoopSpec, ScheduleKind, SwVariant};
use specrt_mem::ElemSize;
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

use crate::common::{permutation, rng_for, Scale, Workload};

/// The four tested arrays (track state, 4- and 8-byte elements).
pub const A0: ArrayId = ArrayId(0);
/// Second tested array.
pub const A1: ArrayId = ArrayId(1);
/// Third tested array.
pub const A2: ArrayId = ArrayId(2);
/// Fourth tested array.
pub const A3: ArrayId = ArrayId(3);
/// Per-iteration target indices.
pub const IDX: ArrayId = ArrayId(4);
/// Per-iteration filter work counts (imbalance).
pub const CNT: ArrayId = ArrayId(5);
/// Large read-only filter data (the untested fraction of accesses).
pub const WORK: ArrayId = ArrayId(6);
/// Per-iteration output (analyzable, not under test).
pub const OUT: ArrayId = ArrayId(7);
/// Per-iteration condition: whether the iteration touches tested arrays.
pub const FLAG: ArrayId = ArrayId(8);

const TESTED_LEN: u64 = 640;
const WORK_LEN: u64 = 4096;
const TAG: u64 = 4;

/// The Track workload at `scale` (16 processors). One in eleven
/// invocations is a not-fully-parallel instance (5 of 56 at full scale,
/// like the paper).
pub fn workload(scale: Scale) -> Workload {
    let invocations = scale.pick(4, 14, 56);
    let specs = (0..invocations)
        .map(|inv| instance(inv, inv % 11 == 3))
        .collect();
    Workload {
        name: "track",
        paper_loop: "nlfilt.do300",
        procs: 16,
        invocations: specs,
        // Figure 13 runs "the iteration-wise tests on the loop
        // instantiation that needs processor-wise tests to pass": block-1
        // dynamic scheduling splits the colliding pairs across processors,
        // so the hardware test fails too.
        failure_instance: {
            let mut s = instance(3, true);
            s.schedule = ScheduleKind::Dynamic { block: 1 };
            s
        },
        sw_variant: SwVariant::ProcessorWise,
    }
}

/// One invocation. With `paired`, ~10% of adjacent iteration pairs
/// `(2k, 2k+1)` collide on an element (the not-fully-parallel instances).
pub fn instance(inv: u64, paired: bool) -> LoopSpec {
    let mut rng = rng_for(TAG, inv);
    let iters = 360 + (inv % 5) * 60; // ~480 on average
                                      // iters <= 600 < TESTED_LEN (640), so the permutation maps injectively
                                      // into the tested arrays: parallel instances never collide.
    let sigma = permutation(&mut rng, iters);
    let mut idx_init: Vec<Scalar> = sigma.iter().map(|&s| Scalar::Int(s as i64)).collect();
    // "The fraction of accesses to these arrays changes from 0% to 44%."
    let density = (inv % 8) as f64 / 8.0;
    let mut flag_init: Vec<Scalar> = (0..iters)
        .map(|_| Scalar::Int(rng.chance(density) as i64))
        .collect();
    if paired {
        for k in 0..(iters / 2) {
            if rng.chance(0.1) {
                idx_init[(2 * k + 1) as usize] = idx_init[(2 * k) as usize];
                flag_init[(2 * k) as usize] = Scalar::Int(1);
                flag_init[(2 * k + 1) as usize] = Scalar::Int(1);
            }
        }
    }
    // Imbalanced filter work.
    let cnt_init: Vec<Scalar> = (0..iters)
        .map(|_| {
            let c = if rng.chance(0.2) {
                rng.range(30, 80)
            } else {
                rng.range(2, 12)
            };
            Scalar::Int(c as i64)
        })
        .collect();
    let work_init: Vec<Scalar> = (0..WORK_LEN)
        .map(|i| Scalar::Float((i as f64 * 0.11).cos()))
        .collect();

    let mut b = ProgramBuilder::new();
    // Untested filter work: acc = sum over CNT[iter] reads of WORK.
    let cnt = b.load(CNT, Operand::Iter);
    let j = b.mov(Operand::ImmI(0));
    let acc = b.mov(Operand::ImmF(0.0));
    let top = b.label();
    let done = b.label();
    b.bind(top);
    let c = b.binop(BinOp::CmpLt, Operand::Reg(j), Operand::Reg(cnt));
    b.bz(Operand::Reg(c), done);
    let w1 = b.binop(BinOp::Mul, Operand::Iter, Operand::ImmI(13));
    let w2 = b.binop(BinOp::Add, Operand::Reg(w1), Operand::Reg(j));
    let widx = b.binop(BinOp::Rem, Operand::Reg(w2), Operand::ImmI(WORK_LEN as i64));
    let wv = b.load(WORK, Operand::Reg(widx));
    b.binop_into(acc, BinOp::FAdd, Operand::Reg(acc), Operand::Reg(wv));
    b.binop_into(j, BinOp::Add, Operand::Reg(j), Operand::ImmI(1));
    b.jmp(top);
    b.bind(done);
    // Conditionally update the four tested arrays at IDX[iter].
    let flag = b.load(FLAG, Operand::Iter);
    let skip = b.label();
    b.bz(Operand::Reg(flag), skip);
    let t = b.load(IDX, Operand::Iter);
    for arr in [A0, A1, A2, A3] {
        let v = b.load(arr, Operand::Reg(t));
        let v2 = b.binop(BinOp::FAdd, Operand::Reg(v), Operand::Reg(acc));
        b.store(arr, Operand::Reg(t), Operand::Reg(v2));
    }
    b.bind(skip);
    b.store(OUT, Operand::Iter, Operand::Reg(acc));
    b.compute(8);
    let body = b.build().expect("track body verifies");

    let mut plan = TestPlan::new();
    for arr in [A0, A1, A2, A3] {
        plan.set(arr, ProtocolKind::NonPriv);
    }

    let tested_init = |scale: f64| -> Vec<Scalar> {
        (0..TESTED_LEN)
            .map(|i| Scalar::Float(i as f64 * scale))
            .collect()
    };

    LoopSpec {
        name: format!("track#{inv}{}", if paired { "!pairs" } else { "" }),
        body,
        iters,
        arrays: vec![
            ArrayDecl::with_init(A0, ElemSize::W4, tested_init(0.1)),
            ArrayDecl::with_init(A1, ElemSize::W8, tested_init(0.2)),
            ArrayDecl::with_init(A2, ElemSize::W4, tested_init(0.3)),
            ArrayDecl::with_init(A3, ElemSize::W8, tested_init(0.4)),
            ArrayDecl::with_init(IDX, ElemSize::W8, idx_init),
            ArrayDecl::with_init(CNT, ElemSize::W4, cnt_init),
            ArrayDecl::with_init(WORK, ElemSize::W8, work_init),
            ArrayDecl::zeroed(OUT, iters, ElemSize::W8),
            ArrayDecl::with_init(FLAG, ElemSize::W4, flag_init),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        // "The plain dynamically-scheduled hardware scheme passes all loops
        // if the iterations are scheduled in blocks of a few iterations
        // each": aligned blocks of 4 keep the colliding pairs together.
        schedule: ScheduleKind::Dynamic { block: 4 },
        live_after: vec![A0, A1, A2, A3],
        stamp_window: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_machine::{run_scenario, Scenario, SwVariant};

    const TESTED: [ArrayId; 4] = [A0, A1, A2, A3];

    #[test]
    fn parallel_instance_passes_everywhere() {
        let spec = instance(1, false);
        let serial = run_scenario(&spec, Scenario::Serial, 8);
        let hw = run_scenario(&spec, Scenario::Hw, 8);
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
        assert!(hw.final_image.same_contents(&serial.final_image, &TESTED));
        let sw = run_scenario(&spec, Scenario::Sw(SwVariant::ProcessorWise), 8);
        assert_eq!(sw.passed, Some(true), "{:?}", sw.failure);
    }

    #[test]
    fn paired_instance_fails_iteration_wise_but_passes_coarser_tests() {
        let spec = instance(3, true);
        let iw = run_scenario(&spec, Scenario::Sw(SwVariant::IterationWise), 8);
        assert_eq!(iw.passed, Some(false), "iteration-wise must fail");
        let pw = run_scenario(&spec, Scenario::Sw(SwVariant::ProcessorWise), 8);
        assert_eq!(pw.passed, Some(true), "{:?}", pw.failure);
        let hw = run_scenario(&spec, Scenario::Hw, 8);
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
    }

    #[test]
    fn paired_instance_final_state_correct_either_way() {
        let spec = instance(3, true);
        let serial = run_scenario(&spec, Scenario::Serial, 8);
        let iw = run_scenario(&spec, Scenario::Sw(SwVariant::IterationWise), 8);
        assert!(iw.final_image.same_contents(&serial.final_image, &TESTED));
        let hw = run_scenario(&spec, Scenario::Hw, 8);
        assert!(hw.final_image.same_contents(&serial.final_image, &TESTED));
    }

    #[test]
    fn tested_access_fraction_varies() {
        // Invocation 0 has density 0 (no tested accesses); invocation 7 has
        // the highest density.
        let f0: i64 = instance(0, false).arrays[8]
            .init
            .iter()
            .map(|s| s.as_int())
            .sum();
        let f7: i64 = instance(7, false).arrays[8]
            .init
            .iter()
            .map(|s| s.as_int())
            .sum();
        assert_eq!(f0, 0);
        assert!(f7 > 100);
    }

    #[test]
    fn five_of_fiftysix_fail_at_full_scale() {
        let paired: Vec<u64> = (0..56).filter(|i| i % 11 == 3).collect();
        assert_eq!(paired.len(), 5);
    }
}
