#![warn(missing_docs)]

//! # specrt-workloads
//!
//! Synthetic stand-ins for the four Perfect Club loops of the paper's
//! evaluation (§5.2). The original 1989 Perfect Club sources and inputs are
//! not available, so each loop is reconstructed from every characteristic
//! §5.2 reports — iteration counts, invocation counts, working-set sizes,
//! element sizes, access patterns, privatization needs, load-imbalance
//! profiles, scheduling constraints, and Track's 5-of-56 instances that
//! fail the iteration-wise test. See `DESIGN.md` §4 for the substitution
//! rationale.
//!
//! | module | paper loop | test | §5.2 facts reproduced |
//! |---|---|---|---|
//! | [`ocean`] | Ocean `ftrvmt.do109` | non-priv | 8 procs, 32 iterations, strides vary per invocation, small working set, processor-wise SW |
//! | [`p3m`] | P3m `pp.do100` | privatization | 16 procs, huge iteration count, 4-byte elements, no read-in/copy-out, high imbalance → dynamic scheduling |
//! | [`adm`] | Adm `run.do20` | both | 16 procs, 32/64 iterations, 8-byte elements, mixed non-priv + priv arrays, processor-wise SW |
//! | [`track`] | Track `nlfilt.do300` | non-priv ×4 | 16 procs, ~480 iterations, 4- and 8-byte elements, tested-access fraction 0–44%, 5/56 instances fail iteration-wise but pass processor-wise, imbalance → HW dynamic small blocks |
//!
//! Every invocation is generated deterministically from the invocation
//! index, and each module also provides the §6.2 *forced-failure* variant
//! used in Figure 13. [`synth`] additionally provides conflict-density-
//! parameterized loops for the §2.2.4 profitability sweep.

pub mod adm;
pub mod common;
pub mod ocean;
pub mod p3m;
pub mod synth;
pub mod track;

pub use common::{Scale, Workload};

/// All four workloads at the given scale, in the paper's presentation
/// order.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    vec![
        ocean::workload(scale),
        p3m::workload(scale),
        adm::workload(scale),
        track::workload(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_workloads_present() {
        let ws = all_workloads(Scale::Smoke);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["ocean", "p3m", "adm", "track"]);
    }

    #[test]
    fn paper_processor_counts() {
        let ws = all_workloads(Scale::Smoke);
        assert_eq!(ws[0].procs, 8, "Ocean runs with 8 processors");
        for w in &ws[1..] {
            assert_eq!(w.procs, 16, "{} runs with 16 processors", w.name);
        }
    }
}
