//! P3m — `pp.do100` (§5.2).
//!
//! Paper facts reproduced: a single invocation with a very large iteration
//! count (97 336 in the paper, 15 000 simulated there; scaled here), a very
//! large working set, arrays needing the **privatization** algorithm with
//! 4-byte elements, no read-in or copy-out, and highly imbalanced
//! iterations requiring **dynamic scheduling**; 16 processors.
//!
//! The synthetic body is a particle-particle interaction kernel: iteration
//! `i` visits `NB[i]` neighbours (a heavy-tailed count), gathers positions
//! from a large read-only array, and accumulates partial forces in a
//! privatized workspace that every iteration writes before reading.

use specrt_ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt_machine::{ArrayDecl, LoopSpec, ScheduleKind, SwVariant};
use specrt_mem::ElemSize;
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

use crate::common::{rng_for, Scale, Workload};

/// Particle positions (large, read-only).
pub const POS: ArrayId = ArrayId(0);
/// Privatized force workspace (written before read in every iteration).
pub const W: ArrayId = ArrayId(1);
/// Per-particle accumulated output (disjoint writes; not under test).
pub const OUT: ArrayId = ArrayId(2);
/// Neighbour counts (read-only; the imbalance profile).
pub const NB: ArrayId = ArrayId(3);

const POS_LEN: u64 = 65536;
const W_LEN: u64 = 1024;
const TAG: u64 = 2;

/// The P3m workload at `scale` (16 processors, one invocation).
pub fn workload(scale: Scale) -> Workload {
    let iters = scale.pick(300, 3000, 15000);
    Workload {
        name: "p3m",
        paper_loop: "pp.do100",
        procs: 16,
        invocations: vec![instance(iters, false)],
        failure_instance: instance(scale.pick(200, 600, 2000), true),
        sw_variant: SwVariant::IterationWise,
    }
}

/// One instance with `iters` iterations. With `force_failure`, the arrays
/// under test are *not* privatized and the non-privatization algorithm runs
/// instead — the §6.2 recipe, which fails immediately because every
/// processor writes the shared workspace.
pub fn instance(iters: u64, force_failure: bool) -> LoopSpec {
    let mut rng = rng_for(TAG, 0);
    // Heavy-tailed neighbour counts: mostly 4..16, occasionally 60..160.
    let nb_init: Vec<Scalar> = (0..iters)
        .map(|_| {
            let n = if rng.chance(0.15) {
                rng.range(60, 160)
            } else {
                rng.range(4, 16)
            };
            Scalar::Int(n as i64)
        })
        .collect();
    let pos_init: Vec<Scalar> = (0..POS_LEN)
        .map(|i| Scalar::Float((i as f64 * 0.37).sin()))
        .collect();

    let mut b = ProgramBuilder::new();
    let nb = b.load(NB, Operand::Iter);
    let j = b.mov(Operand::ImmI(0));
    let acc = b.mov(Operand::ImmF(0.0));
    let top = b.label();
    let done = b.label();
    b.bind(top);
    let cond = b.binop(BinOp::CmpLt, Operand::Reg(j), Operand::Reg(nb));
    b.bz(Operand::Reg(cond), done);
    // posidx = (iter*8 + j) % POS_LEN: a particle's neighbours are
    // spatially clustered, so consecutive visits share cache lines.
    let t1 = b.binop(BinOp::Mul, Operand::Iter, Operand::ImmI(8));
    let t3 = b.binop(BinOp::Add, Operand::Reg(t1), Operand::Reg(j));
    let posidx = b.binop(BinOp::Rem, Operand::Reg(t3), Operand::ImmI(POS_LEN as i64));
    let p = b.load(POS, Operand::Reg(posidx));
    // widx = (iter + j*13) % W_LEN; write-then-read (privatizable).
    let u1 = b.binop(BinOp::Mul, Operand::Reg(j), Operand::ImmI(13));
    let u2 = b.binop(BinOp::Add, Operand::Reg(u1), Operand::Iter);
    let widx = b.binop(BinOp::Rem, Operand::Reg(u2), Operand::ImmI(W_LEN as i64));
    b.store(W, Operand::Reg(widx), Operand::Reg(p));
    let v = b.load(W, Operand::Reg(widx));
    b.binop_into(acc, BinOp::FAdd, Operand::Reg(acc), Operand::Reg(v));
    // Pairwise force evaluation (distance, cutoff, accumulation).
    b.compute(6);
    b.binop_into(j, BinOp::Add, Operand::Reg(j), Operand::ImmI(1));
    b.jmp(top);
    b.bind(done);
    b.store(OUT, Operand::Iter, Operand::Reg(acc));
    b.compute(12);
    let body = b.build().expect("p3m body verifies");

    let mut plan = TestPlan::new();
    if force_failure {
        plan.set(W, ProtocolKind::NonPriv);
    } else {
        plan.set(
            W,
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
        );
    }

    LoopSpec {
        name: format!("p3m{}", if force_failure { "!fail" } else { "" }),
        body,
        iters,
        arrays: vec![
            ArrayDecl::with_init(POS, ElemSize::W4, pos_init),
            ArrayDecl::zeroed(W, W_LEN, ElemSize::W4),
            ArrayDecl::zeroed(OUT, iters, ElemSize::W4),
            ArrayDecl::with_init(NB, ElemSize::W4, nb_init),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Dynamic { block: 4 },
        live_after: vec![OUT],
        // The paper's full P3m runs 97,336 iterations — beyond 16-bit
        // stamps, needing §3.3's periodic resynchronization. We mirror
        // that at `Full` scale (15,000 iterations → two 8K-iteration
        // windows); smaller scales run unwindowed.
        stamp_window: if iters > (1 << 13) {
            Some(1 << 13)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_machine::{run_scenario, Scenario, SwVariant};

    #[test]
    fn privatized_instance_passes_and_matches_serial() {
        let spec = instance(120, false);
        let serial = run_scenario(&spec, Scenario::Serial, 4);
        let hw = run_scenario(&spec, Scenario::Hw, 4);
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
        assert!(hw.final_image.same_contents(&serial.final_image, &[OUT]));
        let sw = run_scenario(&spec, Scenario::Sw(SwVariant::IterationWise), 4);
        assert_eq!(sw.passed, Some(true), "{:?}", sw.failure);
        assert!(sw.final_image.same_contents(&serial.final_image, &[OUT]));
    }

    #[test]
    fn forced_failure_without_privatization() {
        let spec = instance(80, true);
        let serial = run_scenario(&spec, Scenario::Serial, 4);
        let hw = run_scenario(&spec, Scenario::Hw, 4);
        assert_eq!(hw.passed, Some(false), "shared workspace must conflict");
        assert!(hw.final_image.same_contents(&serial.final_image, &[OUT, W]));
        assert!(hw.iterations < 80, "HW aborts before completing");
    }

    #[test]
    fn neighbour_counts_are_imbalanced() {
        let spec = instance(500, false);
        let counts: Vec<i64> = spec.arrays[3]
            .init
            .iter()
            .map(|s| match s {
                Scalar::Int(v) => *v,
                _ => panic!(),
            })
            .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max >= 60 && min <= 16, "imbalance profile: {min}..{max}");
    }

    #[test]
    fn dynamic_scheduling_declared() {
        let spec = instance(100, false);
        assert!(matches!(spec.schedule, ScheduleKind::Dynamic { .. }));
    }
}
