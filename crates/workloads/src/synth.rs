//! Synthetic conflict-density loops.
//!
//! §2.2.4 of the paper: "the compiler can use heuristics and statistics
//! about the parallelization success-rate in previous executions and
//! automatically decide when run-time parallelization can be profitable."
//! This module provides the knob that discussion needs: a family of loops
//! whose probability of being parallel is controlled by a conflict-density
//! parameter, used by the profitability sweep in
//! `specrt_core::experiments::extension_density` and by stress tests.

use specrt_ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt_machine::{ArrayDecl, LoopSpec, ScheduleKind, SwVariant};
use specrt_mem::ElemSize;
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

use crate::common::{permutation, rng_for};

/// The updated array (under the non-privatization test).
pub const A: ArrayId = ArrayId(0);
/// Per-iteration target indices.
pub const IDX: ArrayId = ArrayId(1);
/// Per-iteration output (not under test).
pub const OUT: ArrayId = ArrayId(2);

const TAG: u64 = 9;

/// A read-modify-write loop over `A[IDX[i]]` where, with probability
/// `density`, an iteration's target duplicates another iteration's —
/// creating a cross-iteration dependence that is a cross-*processor*
/// dependence whenever the two iterations land on different chunks.
///
/// `density == 0.0` is always parallel; density `1.0` conflicts almost
/// surely. `seed` varies the instance.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn conflict_loop(iters: u64, density: f64, seed: u64) -> LoopSpec {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = rng_for(TAG, seed);
    let sigma = permutation(&mut rng, iters);
    let mut idx: Vec<u64> = sigma;
    for i in 0..iters as usize {
        if rng.chance(density) {
            // Duplicate a uniformly random other iteration's target.
            let victim = rng.below(iters) as usize;
            idx[i] = idx[victim];
        }
    }
    let idx_init: Vec<Scalar> = idx.iter().map(|&v| Scalar::Int(v as i64)).collect();

    let mut b = ProgramBuilder::new();
    let t = b.load(IDX, Operand::Iter);
    let v = b.load(A, Operand::Reg(t));
    let v2 = b.binop(BinOp::FMul, Operand::Reg(v), Operand::ImmF(1.0625));
    let v3 = b.binop(BinOp::FAdd, Operand::Reg(v2), Operand::ImmF(0.25));
    b.store(A, Operand::Reg(t), Operand::Reg(v3));
    b.store(OUT, Operand::Iter, Operand::Reg(v3));
    b.compute(60);
    let body = b.build().expect("conflict loop verifies");

    let mut plan = TestPlan::new();
    plan.set(A, ProtocolKind::NonPriv);
    LoopSpec {
        name: format!("synth-density-{density:.2}#{seed}"),
        body,
        iters,
        arrays: vec![
            ArrayDecl::with_init(
                A,
                ElemSize::W8,
                (0..iters).map(|i| Scalar::Float(i as f64)).collect(),
            ),
            ArrayDecl::with_init(IDX, ElemSize::W8, idx_init),
            ArrayDecl::zeroed(OUT, iters, ElemSize::W8),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![A, OUT],
        stamp_window: None,
    }
}

/// The software variant to compare against for this family.
pub const SW_VARIANT: SwVariant = SwVariant::ProcessorWise;

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_machine::{run_scenario, Scenario};

    #[test]
    fn zero_density_is_parallel() {
        let spec = conflict_loop(64, 0.0, 1);
        let hw = run_scenario(&spec, Scenario::Hw, 4);
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
    }

    #[test]
    fn high_density_fails_and_recovers() {
        let spec = conflict_loop(64, 0.9, 1);
        let serial = run_scenario(&spec, Scenario::Serial, 4);
        let hw = run_scenario(&spec, Scenario::Hw, 4);
        assert_eq!(hw.passed, Some(false));
        assert!(hw.final_image.same_contents(&serial.final_image, &[A, OUT]));
    }

    #[test]
    fn instances_vary_with_seed() {
        let a = conflict_loop(32, 0.5, 1);
        let b = conflict_loop(32, 0.5, 2);
        assert_ne!(a.arrays[1].init, b.arrays[1].init);
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn bad_density_rejected() {
        conflict_loop(8, 1.5, 0);
    }
}
