//! Ocean — `ftrvmt.do109` (§5.2).
//!
//! Paper facts reproduced: executed thousands of times (4129 in the paper;
//! scaled here), 32 iterations most of the time, small working set
//! (258×64 complex elements ≈ 16 K 8-byte elements), data accessed with
//! different strides in different executions, non-privatization algorithm
//! for both schemes, good load balance → static scheduling and the
//! processor-wise software test, 8 processors.
//!
//! The synthetic body is an FFT-style butterfly pass: iteration `i`
//! transforms a 16-element strided section starting at `OFF[i]` — a
//! subscripted base the compiler cannot analyze. Sections are disjoint in
//! parallel instances; the §6.2 forced-failure instance makes two sections
//! on different processors collide.

use specrt_ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt_machine::{ArrayDecl, LoopSpec, ScheduleKind, SwVariant};
use specrt_mem::ElemSize;
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

use crate::common::{permutation, rng_for, Scale, Workload};

/// The transformed data array (under the non-privatization test).
pub const A: ArrayId = ArrayId(0);
/// Per-iteration section bases (input data; read-only).
pub const OFF: ArrayId = ArrayId(1);
/// Butterfly coefficients (read-only).
pub const C: ArrayId = ArrayId(2);

const A_LEN: u64 = 33024; // 258 * 64 complex elements = 33024 scalar words
const C_LEN: u64 = 64;
const SECTION: u64 = 516; // 33024 / 64 complex per iteration, x2 scalars / 2
const ITERS: u64 = 32;
const TAG: u64 = 1;

/// The Ocean workload at `scale` (8 processors).
pub fn workload(scale: Scale) -> Workload {
    let invocations = scale.pick(3, 40, 400);
    let specs = (0..invocations).map(|inv| instance(inv, false)).collect();
    Workload {
        name: "ocean",
        paper_loop: "ftrvmt.do109",
        procs: 8,
        invocations: specs,
        failure_instance: instance(0, true),
        sw_variant: SwVariant::ProcessorWise,
    }
}

/// One invocation. `force_failure` inserts a cross-processor dependence
/// (the §6.2 recipe: "we insert a cross-iteration dependence").
pub fn instance(inv: u64, force_failure: bool) -> LoopSpec {
    let mut rng = rng_for(TAG, inv);
    // "Data is accessed with different strides in different executions."
    let stride = [1u64, 2][(inv % 2) as usize];
    let span = SECTION * stride;
    let base = if A_LEN > ITERS * span {
        (inv * 577) % (A_LEN - ITERS * span)
    } else {
        0
    };

    let sigma = permutation(&mut rng, ITERS);
    let mut off: Vec<Scalar> = sigma
        .iter()
        .map(|&s| Scalar::Int((base + s * span) as i64))
        .collect();
    if force_failure {
        // Iterations 1 and 17 land on different static chunks (4 iterations
        // per processor on 8 processors): a true cross-processor flow
        // dependence that both schemes must reject.
        off[17] = off[1];
    }

    // Iteration body: one butterfly pass over a 516-element strided
    // section (the paper's loop processes a full column per iteration).
    let mut b = ProgramBuilder::new();
    let base_reg = b.load(OFF, Operand::Iter);
    let j = b.mov(Operand::ImmI(0));
    let top = b.label();
    let done = b.label();
    b.bind(top);
    let cond = b.binop(BinOp::CmpLt, Operand::Reg(j), Operand::ImmI(SECTION as i64));
    b.bz(Operand::Reg(cond), done);
    let offs = b.binop(BinOp::Mul, Operand::Reg(j), Operand::ImmI(stride as i64));
    let idx = b.binop(BinOp::Add, Operand::Reg(base_reg), Operand::Reg(offs));
    let v = b.load(A, Operand::Reg(idx));
    let cidx = b.binop(
        BinOp::And,
        Operand::Reg(j),
        Operand::ImmI((C_LEN - 1) as i64),
    );
    let c = b.load(C, Operand::Reg(cidx));
    let v2 = b.binop(BinOp::FMul, Operand::Reg(v), Operand::Reg(c));
    let v3 = b.binop(BinOp::FAdd, Operand::Reg(v2), Operand::ImmF(0.5));
    // Twiddle arithmetic of the butterfly.
    b.compute(3);
    b.store(A, Operand::Reg(idx), Operand::Reg(v3));
    b.binop_into(j, BinOp::Add, Operand::Reg(j), Operand::ImmI(1));
    b.jmp(top);
    b.bind(done);
    b.compute(10);
    let body = b.build().expect("ocean body verifies");

    let a_init: Vec<Scalar> = (0..A_LEN).map(|i| Scalar::Float(i as f64 * 0.01)).collect();
    let c_init: Vec<Scalar> = (0..C_LEN)
        .map(|j| Scalar::Float(1.0 + j as f64 * 0.001))
        .collect();

    let mut plan = TestPlan::new();
    plan.set(A, ProtocolKind::NonPriv);

    LoopSpec {
        name: format!("ocean#{inv}{}", if force_failure { "!fail" } else { "" }),
        body,
        iters: ITERS,
        arrays: vec![
            // The compiler can bound the modified region from OFF's range,
            // so only that region is backed up (§2.2.1).
            ArrayDecl::with_init(A, ElemSize::W8, a_init)
                .with_backup_region(base, (ITERS * span).min(A_LEN - base)),
            ArrayDecl::with_init(OFF, ElemSize::W8, off),
            ArrayDecl::with_init(C, ElemSize::W8, c_init),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![A],
        stamp_window: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_machine::{run_scenario, Scenario, SwVariant};

    #[test]
    fn parallel_instance_passes_hw_and_matches_serial() {
        let spec = instance(0, false);
        let serial = run_scenario(&spec, Scenario::Serial, 8);
        let hw = run_scenario(&spec, Scenario::Hw, 8);
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
        assert!(hw.final_image.same_contents(&serial.final_image, &[A]));
        assert!(hw.total_cycles < serial.total_cycles);
    }

    #[test]
    fn parallel_instance_passes_processor_wise_sw() {
        let spec = instance(1, false);
        let serial = run_scenario(&spec, Scenario::Serial, 8);
        let sw = run_scenario(&spec, Scenario::Sw(SwVariant::ProcessorWise), 8);
        assert_eq!(sw.passed, Some(true), "{:?}", sw.failure);
        assert!(sw.final_image.same_contents(&serial.final_image, &[A]));
    }

    #[test]
    fn forced_failure_fails_and_recovers() {
        let spec = instance(0, true);
        let serial = run_scenario(&spec, Scenario::Serial, 8);
        let hw = run_scenario(&spec, Scenario::Hw, 8);
        assert_eq!(hw.passed, Some(false));
        assert!(hw.final_image.same_contents(&serial.final_image, &[A]));
    }

    #[test]
    fn strides_differ_across_invocations() {
        // Different invocations exercise different strides.
        let i0 = instance(0, false);
        let i1 = instance(1, false);
        assert_ne!(i0.body, i1.body, "stride is baked into the body");
    }

    #[test]
    fn sections_are_disjoint() {
        let spec = instance(2, false);
        let offs: Vec<i64> = spec.arrays[1]
            .init
            .iter()
            .map(|s| match s {
                Scalar::Int(v) => *v,
                _ => panic!("OFF holds ints"),
            })
            .collect();
        let stride = [1u64, 2][2 % 2];
        let span = (SECTION * stride) as i64;
        let mut sorted = offs.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[1] - w[0] >= span, "sections overlap: {w:?}");
        }
    }
}
