//! Shared workload infrastructure: scales, deterministic generation
//! helpers, and the [`Workload`] bundle.

use specrt_engine::SplitMix64;
use specrt_machine::{LoopSpec, SwVariant};

/// How much of the paper's full run to generate.
///
/// The paper reports per-loop averages over all executions of each loop;
/// since absolute host time is irrelevant (the simulated clock is what is
/// measured), scaled-down invocation counts change only statistical
/// smoothing, not the per-invocation behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for unit tests (seconds of host time).
    Smoke,
    /// Benchmark default: enough invocations/iterations for stable
    /// averages.
    Bench,
    /// Close to the paper's counts where feasible.
    Full,
}

impl Scale {
    /// Picks `(smoke, bench, full)`.
    pub fn pick(self, smoke: u64, bench: u64, full: u64) -> u64 {
        match self {
            Scale::Smoke => smoke,
            Scale::Bench => bench,
            Scale::Full => full,
        }
    }
}

/// A workload: a named family of loop invocations plus its paper
/// configuration.
pub struct Workload {
    /// Short name (`ocean`, `p3m`, `adm`, `track`).
    pub name: &'static str,
    /// The paper's loop identifier.
    pub paper_loop: &'static str,
    /// Processors the paper runs this loop with.
    pub procs: u32,
    /// One [`LoopSpec`] per simulated invocation.
    pub invocations: Vec<LoopSpec>,
    /// The §6.2 forced-failure instance (Figure 13).
    pub failure_instance: LoopSpec,
    /// Which software-test variant the paper uses for this loop
    /// (processor-wise where load balance allows static scheduling).
    pub sw_variant: SwVariant,
}

impl Workload {
    /// Total iterations across all invocations.
    pub fn total_iterations(&self) -> u64 {
        self.invocations.iter().map(|s| s.iters).sum()
    }
}

/// Deterministic RNG for invocation `inv` of workload `tag`.
pub fn rng_for(tag: u64, inv: u64) -> SplitMix64 {
    SplitMix64::new(0x5EC0_0000_0000_0000 ^ (tag << 32) ^ inv)
}

/// A pseudo-random permutation of `0..n` (Fisher–Yates under the given
/// RNG).
pub fn permutation(rng: &mut SplitMix64, n: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    rng.shuffle(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Bench.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn rng_is_deterministic_per_invocation() {
        let mut a = rng_for(1, 5);
        let mut b = rng_for(1, 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for(1, 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn permutation_is_complete() {
        let mut rng = rng_for(2, 0);
        let p = permutation(&mut rng, 50);
        let mut s = p.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
