//! Adm — `run.do20` (§5.2).
//!
//! Paper facts reproduced: many invocations (900 in the paper; scaled
//! here) of a small-working-set loop with 32 or 64 iterations, **mixed**
//! arrays — some under the non-privatization schemes, some under the
//! privatization schemes — 8-byte elements, good load balance → static
//! scheduling and the processor-wise software test; 16 processors.
//!
//! The synthetic body updates a gather/scatter target `X` at a
//! subscripted, per-iteration-distinct location, using a small privatized
//! workspace `T` that every iteration fills before reading back.

use specrt_ir::{ArrayId, BinOp, Operand, ProgramBuilder, Scalar};
use specrt_machine::{ArrayDecl, LoopSpec, ScheduleKind, SwVariant};
use specrt_mem::ElemSize;
use specrt_spec::{IterationNumbering, ProtocolKind, TestPlan};

use crate::common::{permutation, rng_for, Scale, Workload};

/// Scatter target (non-privatization test).
pub const X: ArrayId = ArrayId(0);
/// Privatized workspace (write-then-read each iteration).
pub const T: ArrayId = ArrayId(1);
/// Per-iteration target indices (read-only, input-dependent).
pub const KX: ArrayId = ArrayId(2);
/// Coefficients (read-only).
pub const C: ArrayId = ArrayId(3);

const X_LEN: u64 = 2048;
const X_SLICE: u64 = 32;
const T_LEN: u64 = 16;
const C_LEN: u64 = 64;
const T_SLOTS: u64 = 4;
const TAG: u64 = 3;

/// The Adm workload at `scale` (16 processors).
pub fn workload(scale: Scale) -> Workload {
    let invocations = scale.pick(3, 30, 200);
    let specs = (0..invocations).map(|inv| instance(inv, false)).collect();
    Workload {
        name: "adm",
        paper_loop: "run.do20",
        procs: 16,
        invocations: specs,
        failure_instance: instance(0, true),
        sw_variant: SwVariant::ProcessorWise,
    }
}

/// One invocation. With `force_failure`, the workspace is **not**
/// privatized and runs under the non-privatization algorithm (the §6.2
/// recipe) — every processor writes `T[0..4]`, an immediate conflict.
pub fn instance(inv: u64, force_failure: bool) -> LoopSpec {
    let mut rng = rng_for(TAG, inv);
    // "32 or 64 iterations in each case."
    let iters = if inv.is_multiple_of(2) { 32 } else { 64 };
    // Each iteration owns an 8-element slice of X at a subscripted,
    // input-dependent position (disjoint across iterations).
    let sigma = permutation(&mut rng, X_LEN / X_SLICE);
    let kx_init: Vec<Scalar> = (0..iters)
        .map(|i| Scalar::Int((sigma[i as usize] * X_SLICE) as i64))
        .collect();
    let c_init: Vec<Scalar> = (0..C_LEN)
        .map(|j| Scalar::Float(0.25 + j as f64 * 0.01))
        .collect();
    let x_init: Vec<Scalar> = (0..X_LEN).map(|i| Scalar::Float(i as f64 * 0.5)).collect();

    let mut b = ProgramBuilder::new();
    let k = b.load(KX, Operand::Iter);
    // Fill the workspace: T[s] = C[(iter + s) % C_LEN] * 1.5
    for s in 0..T_SLOTS {
        let ci = b.binop(BinOp::Add, Operand::Iter, Operand::ImmI(s as i64));
        let cm = b.binop(BinOp::Rem, Operand::Reg(ci), Operand::ImmI(C_LEN as i64));
        let c = b.load(C, Operand::Reg(cm));
        let cv = b.binop(BinOp::FMul, Operand::Reg(c), Operand::ImmF(1.5));
        b.store(T, Operand::ImmI(s as i64), Operand::Reg(cv));
    }
    // Read it back and accumulate.
    let mut acc = b.mov(Operand::ImmF(0.0));
    for s in 0..T_SLOTS {
        let v = b.load(T, Operand::ImmI(s as i64));
        acc = b.binop(BinOp::FAdd, Operand::Reg(acc), Operand::Reg(v));
    }
    // Scatter: X[k..k+32] += acc (a column update of the physics state).
    for jj in 0..X_SLICE {
        let xi = b.binop(BinOp::Add, Operand::Reg(k), Operand::ImmI(jj as i64));
        let xv = b.load(X, Operand::Reg(xi));
        let xv2 = b.binop(BinOp::FAdd, Operand::Reg(xv), Operand::Reg(acc));
        b.store(X, Operand::Reg(xi), Operand::Reg(xv2));
        b.compute(24);
    }
    b.compute(400);
    let body = b.build().expect("adm body verifies");

    let mut plan = TestPlan::new();
    plan.set(X, ProtocolKind::NonPriv);
    if force_failure {
        plan.set(T, ProtocolKind::NonPriv);
    } else {
        plan.set(
            T,
            ProtocolKind::Priv {
                read_in: false,
                copy_out: false,
            },
        );
    }

    LoopSpec {
        name: format!("adm#{inv}{}", if force_failure { "!fail" } else { "" }),
        body,
        iters,
        arrays: vec![
            // X is written at one subscripted element per iteration: the
            // sparse save-on-first-write backup of §2.2.1 applies.
            ArrayDecl::with_init(X, ElemSize::W8, x_init).with_sparse_backup(),
            ArrayDecl::zeroed(T, T_LEN, ElemSize::W8),
            ArrayDecl::with_init(KX, ElemSize::W8, kx_init),
            ArrayDecl::with_init(C, ElemSize::W8, c_init),
        ],
        plan,
        numbering: IterationNumbering::iteration_wise(),
        schedule: ScheduleKind::Static,
        live_after: vec![X],
        stamp_window: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_machine::{run_scenario, Scenario, SwVariant};

    #[test]
    fn mixed_tests_pass_and_match_serial() {
        let spec = instance(0, false);
        let serial = run_scenario(&spec, Scenario::Serial, 8);
        let hw = run_scenario(&spec, Scenario::Hw, 8);
        assert_eq!(hw.passed, Some(true), "{:?}", hw.failure);
        assert!(hw.final_image.same_contents(&serial.final_image, &[X]));
        let sw = run_scenario(&spec, Scenario::Sw(SwVariant::ProcessorWise), 8);
        assert_eq!(sw.passed, Some(true), "{:?}", sw.failure);
        assert!(sw.final_image.same_contents(&serial.final_image, &[X]));
    }

    #[test]
    fn forced_failure_without_privatizing_workspace() {
        let spec = instance(0, true);
        let serial = run_scenario(&spec, Scenario::Serial, 8);
        let hw = run_scenario(&spec, Scenario::Hw, 8);
        assert_eq!(hw.passed, Some(false));
        assert!(hw.final_image.same_contents(&serial.final_image, &[X]));
    }

    #[test]
    fn iteration_counts_alternate() {
        assert_eq!(instance(0, false).iters, 32);
        assert_eq!(instance(1, false).iters, 64);
    }

    #[test]
    fn scatter_targets_are_distinct() {
        let spec = instance(4, false);
        let mut kx: Vec<i64> = spec.arrays[2]
            .init
            .iter()
            .map(|s| match s {
                Scalar::Int(v) => *v,
                _ => panic!(),
            })
            .collect();
        kx.sort_unstable();
        kx.dedup();
        assert_eq!(kx.len() as u64, spec.iters, "slice bases must be distinct");
        assert!(kx.iter().all(|&k| k % X_SLICE as i64 == 0));
    }
}
