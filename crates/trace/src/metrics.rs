//! The unified per-run metrics registry.
//!
//! Every layer already counts things — the protocol's `StatSet`, the
//! caches' hit counters, the per-processor `TimeBreakdown`s. The
//! [`MetricsRegistry`] absorbs all of them under stable dotted names so a
//! run produces *one* aggregate that experiments can merge, print and
//! export without knowing which layer a number came from.

use std::collections::BTreeMap;

use specrt_engine::{Histogram, StatSet, TimeBreakdown};

/// Named counters, log-scale histograms and time breakdowns for one run.
///
/// All aggregation is commutative (addition, bucket-wise addition,
/// component-wise addition), so merging per-processor or per-invocation
/// registries is order-independent.
///
/// # Examples
///
/// ```
/// use specrt_trace::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.incr("proto.messages", 3);
/// m.observe("mem.read_latency", 208);
/// assert_eq!(m.counter("proto.messages"), 3);
/// assert_eq!(m.histogram("mem.read_latency").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    breakdowns: BTreeMap<String, TimeBreakdown>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn incr(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Histogram `name`, if any sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges a time breakdown into `name` (component-wise addition).
    pub fn record_breakdown(&mut self, name: &str, tb: TimeBreakdown) {
        let e = self.breakdowns.entry(name.to_string()).or_default();
        *e = e.merged(&tb);
    }

    /// Breakdown `name`, if ever recorded.
    pub fn breakdown(&self, name: &str) -> Option<&TimeBreakdown> {
        self.breakdowns.get(name)
    }

    /// Absorbs a [`StatSet`] under `prefix` (`prefix.key` per counter).
    pub fn absorb_stats(&mut self, prefix: &str, stats: &StatSet) {
        for (k, v) in stats.iter() {
            self.incr(&format!("{prefix}.{k}"), v);
        }
    }

    /// Absorbs worker-pool telemetry under `prefix` (conventionally `par`):
    /// `prefix.workers`, `prefix.chunk`, `prefix.items`, `prefix.chunks`,
    /// `prefix.claim_imbalance` and one `prefix.cases_claimed.w{N}` counter
    /// per worker. All values are pure counts — no host timing — but the
    /// per-worker claim split (and hence the imbalance) depends on thread
    /// scheduling when `workers > 1`, so these counters belong to opt-in
    /// observability output, never to gated deterministic artifacts.
    pub fn absorb_pool_telemetry(&mut self, prefix: &str, t: &specrt_par::PoolTelemetry) {
        self.incr(&format!("{prefix}.workers"), t.workers as u64);
        self.incr(&format!("{prefix}.chunk"), t.chunk as u64);
        self.incr(&format!("{prefix}.items"), t.items as u64);
        self.incr(&format!("{prefix}.chunks"), t.chunks as u64);
        self.incr(&format!("{prefix}.claim_imbalance"), t.imbalance());
        for (w, n) in t.claimed.iter().enumerate() {
            self.incr(&format!("{prefix}.cases_claimed.w{w}"), *n);
        }
    }

    /// Merges another registry into this one. Commutative and
    /// associative: merging per-processor registries in any order yields
    /// the same aggregate.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.incr(k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, tb) in &other.breakdowns {
            self.record_breakdown(k, *tb);
        }
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Iterates breakdowns in name order.
    pub fn breakdowns(&self) -> impl Iterator<Item = (&str, &TimeBreakdown)> {
        self.breakdowns.iter().map(|(k, b)| (k.as_str(), b))
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.breakdowns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_engine::Cycles;

    #[test]
    fn absorb_prefixes_statset_keys() {
        let mut s = StatSet::new();
        s.add("invalidations", 4);
        let mut m = MetricsRegistry::new();
        m.absorb_stats("proto", &s);
        assert_eq!(m.counter("proto.invalidations"), 4);
        assert_eq!(m.counter("proto.absent"), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        a.incr("c", 1);
        a.observe("h", 5);
        a.record_breakdown(
            "t",
            TimeBreakdown {
                busy: Cycles(10),
                sync: Cycles(0),
                mem: Cycles(5),
            },
        );
        let mut b = MetricsRegistry::new();
        b.incr("c", 2);
        b.observe("h", 100);
        b.record_breakdown(
            "t",
            TimeBreakdown {
                busy: Cycles(1),
                sync: Cycles(2),
                mem: Cycles(3),
            },
        );

        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);

        assert_eq!(ab.counter("c"), 3);
        assert_eq!(ba.counter("c"), 3);
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
        assert_eq!(ab.histogram("h").unwrap().max(), 100);
        assert_eq!(
            ba.histogram("h").unwrap().sum(),
            ab.histogram("h").unwrap().sum()
        );
        assert_eq!(ab.breakdown("t"), ba.breakdown("t"));
        assert_eq!(ab.breakdown("t").unwrap().total(), Cycles(21));
    }

    #[test]
    fn pool_telemetry_absorbs_and_merges_order_independently() {
        let t = specrt_par::PoolTelemetry {
            workers: 3,
            chunk: 2,
            items: 10,
            chunks: 5,
            claimed: vec![5, 2, 3],
        };
        let mut a = MetricsRegistry::new();
        a.absorb_pool_telemetry("par", &t);
        assert_eq!(a.counter("par.workers"), 3);
        assert_eq!(a.counter("par.chunks"), 5);
        assert_eq!(a.counter("par.claim_imbalance"), 3);
        assert_eq!(a.counter("par.cases_claimed.w0"), 5);
        assert_eq!(a.counter("par.cases_claimed.w2"), 3);
        assert_eq!(
            a.counter("par.cases_claimed.w0")
                + a.counter("par.cases_claimed.w1")
                + a.counter("par.cases_claimed.w2"),
            a.counter("par.items")
        );

        // Order-independent merging with prof.* counters mixed in.
        let mut b = MetricsRegistry::new();
        b.incr("prof.spans", 7);
        b.incr("par.workers", 1);
        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.counter("par.workers"), ba.counter("par.workers"));
        assert_eq!(ab.counter("par.workers"), 4);
        assert_eq!(ab.counter("prof.spans"), 7);
        assert_eq!(
            ab.counters().collect::<Vec<_>>(),
            ba.counters().collect::<Vec<_>>(),
            "merged registries must iterate identically regardless of order"
        );
    }

    #[test]
    fn metrics_json_renders_pool_histograms() {
        let mut m = MetricsRegistry::new();
        m.absorb_pool_telemetry(
            "par",
            &specrt_par::PoolTelemetry {
                workers: 2,
                chunk: 1,
                items: 6,
                chunks: 6,
                claimed: vec![4, 2],
            },
        );
        m.observe("par.claim_wait_ns", 300);
        m.observe("par.claim_wait_ns", 3000);
        let out = crate::export::metrics_json(&m);
        assert!(out.contains("\"par.workers\":2"));
        assert!(out.contains("\"par.cases_claimed.w1\":2"));
        // Histogram block: count, sum and the two log-2 buckets hit.
        assert!(out.contains("\"par.claim_wait_ns\":{\"count\":2,\"sum\":3300"));
        assert!(out.contains("\"256\":1"));
        assert!(out.contains("\"2048\":1"));
    }

    #[test]
    fn empty_registry_reports_empty() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        assert!(m.histogram("x").is_none());
        assert!(m.breakdown("x").is_none());
    }
}
