//! Exporters: JSONL event dumps, Chrome `trace_events` JSON (loadable in
//! Perfetto or `chrome://tracing`), and a JSON rendering of the metrics
//! registry. All JSON is emitted by hand — the crate stays
//! zero-dependency, and the schema is small and flat.

use std::fmt::Write as _;

use crate::event::TraceEvent;
use crate::metrics::MetricsRegistry;

/// Escapes `s` for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One flat JSON object per event (no trailing newline on the last line).
///
/// Every object carries `"kind"` and `"t"`; the remaining fields follow
/// the [`TraceEvent`] variant's fields.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&event_json(e));
    }
    out
}

fn event_json(e: &TraceEvent) -> String {
    let mut s = format!("{{\"kind\":\"{}\",\"t\":{}", e.kind(), e.at().raw());
    match e {
        TraceEvent::Transaction {
            proc,
            arr,
            idx,
            write,
            hit,
            home,
            queue,
            complete,
            case,
            ..
        } => {
            let _ = write!(
                s,
                ",\"proc\":{proc},\"arr\":{arr},\"idx\":{idx},\"write\":{write},\
                 \"hit\":\"{}\",\"home\":{home},\"queue\":{},\"complete\":{}",
                hit.label(),
                queue.raw(),
                complete.raw()
            );
            if let Some(c) = case {
                let _ = write!(s, ",\"case\":\"{c}\"");
            }
        }
        TraceEvent::SpecTransition {
            proc,
            arr,
            idx,
            protocol,
            from,
            to,
            iter,
            ..
        } => {
            let _ = write!(
                s,
                ",\"proc\":{proc},\"arr\":{arr},\"idx\":{idx},\"protocol\":\"{protocol}\",\
                 \"from\":\"{}\",\"to\":\"{}\"",
                esc(from),
                esc(to)
            );
            if let Some(i) = iter {
                let _ = write!(s, ",\"iter\":{i}");
            }
        }
        TraceEvent::Message { kind, arr, idx, .. } => {
            let _ = write!(s, ",\"msg\":\"{kind}\",\"arr\":{arr},\"idx\":{idx}");
        }
        TraceEvent::Net {
            src,
            dst,
            hops,
            queue,
            transit,
            ..
        } => {
            let _ = write!(
                s,
                ",\"src\":{src},\"dst\":{dst},\"hops\":{hops},\"queue\":{},\"transit\":{}",
                queue.raw(),
                transit.raw()
            );
        }
        TraceEvent::Sched {
            proc,
            iter,
            policy,
            overhead,
            wait,
            ..
        } => {
            let _ = write!(
                s,
                ",\"proc\":{proc},\"iter\":{iter},\"policy\":\"{policy}\",\
                 \"overhead\":{},\"wait\":{}",
                overhead.raw(),
                wait.raw()
            );
        }
        TraceEvent::Fault {
            src,
            dst,
            kind,
            attempt,
            ..
        } => {
            let _ = write!(
                s,
                ",\"src\":{src},\"dst\":{dst},\"fault\":\"{kind}\",\"attempt\":{attempt}"
            );
        }
        TraceEvent::NodeFault {
            src,
            dst,
            node,
            kind,
            attempt,
            ..
        } => {
            let _ = write!(
                s,
                ",\"src\":{src},\"dst\":{dst},\"node\":{node},\"fault\":\"{kind}\",\
                 \"attempt\":{attempt}"
            );
        }
        TraceEvent::Recovery {
            action, attempt, ..
        } => {
            let _ = write!(s, ",\"action\":\"{action}\",\"attempt\":{attempt}");
        }
        TraceEvent::Abort {
            proc,
            arr,
            idx,
            iter,
            label,
            reason,
            ..
        } => {
            let _ = write!(s, ",\"label\":\"{label}\",\"reason\":\"{}\"", esc(reason));
            if let Some(p) = proc {
                let _ = write!(s, ",\"proc\":{p}");
            }
            if let Some(a) = arr {
                let _ = write!(s, ",\"arr\":{a}");
            }
            if let Some(i) = idx {
                let _ = write!(s, ",\"idx\":{i}");
            }
            if let Some(i) = iter {
                let _ = write!(s, ",\"iter\":{i}");
            }
        }
    }
    s.push('}');
    s
}

/// A Chrome `trace_events` JSON document.
///
/// Transactions and scheduler dispatches become complete (`"ph":"X"`)
/// events on the issuing processor's track; state transitions and
/// messages become thread-scoped instants; aborts become process-scoped
/// instants so they stand out at any zoom. Simulated cycles are reported
/// as microseconds (Perfetto's native unit) one-to-one.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&chrome_event(e));
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

fn chrome_event(e: &TraceEvent) -> String {
    let args = event_json(e);
    match e {
        TraceEvent::Transaction {
            at,
            proc,
            arr,
            idx,
            write,
            hit,
            complete,
            ..
        } => format!(
            "{{\"name\":\"{} arr{arr}[{idx}] {}\",\"cat\":\"txn\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{proc},\"args\":{args}}}",
            if *write { "store" } else { "load" },
            hit.label(),
            at.raw(),
            complete.raw().saturating_sub(at.raw()).max(1),
        ),
        TraceEvent::SpecTransition {
            at,
            proc,
            arr,
            idx,
            protocol,
            to,
            ..
        } => format!(
            "{{\"name\":\"{protocol} arr{arr}[{idx}] -> {}\",\"cat\":\"spec\",\"ph\":\"i\",\
             \"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{proc},\"args\":{args}}}",
            esc(to),
            at.raw(),
        ),
        TraceEvent::Message { at, kind, arr, idx } => format!(
            "{{\"name\":\"{kind} arr{arr}[{idx}]\",\"cat\":\"msg\",\"ph\":\"i\",\"s\":\"p\",\
             \"ts\":{},\"pid\":0,\"tid\":0,\"args\":{args}}}",
            at.raw(),
        ),
        TraceEvent::Net {
            at,
            src,
            dst,
            hops,
            transit,
            ..
        } => format!(
            "{{\"name\":\"net n{src}->n{dst} ({hops} hops)\",\"cat\":\"net\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{src},\"args\":{args}}}",
            at.raw(),
            transit.raw().max(1),
        ),
        TraceEvent::Sched {
            at,
            proc,
            iter,
            policy,
            overhead,
            wait,
            ..
        } => format!(
            "{{\"name\":\"{policy} iter {iter}\",\"cat\":\"sched\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{proc},\"args\":{args}}}",
            at.raw(),
            (overhead.raw() + wait.raw()).max(1),
        ),
        TraceEvent::Fault {
            at, src, dst, kind, ..
        } => format!(
            "{{\"name\":\"fault {kind} n{src}->n{dst}\",\"cat\":\"fault\",\"ph\":\"i\",\
             \"s\":\"p\",\"ts\":{},\"pid\":0,\"tid\":{src},\"args\":{args}}}",
            at.raw(),
        ),
        TraceEvent::NodeFault {
            at,
            src,
            dst,
            node,
            kind,
            ..
        } => format!(
            "{{\"name\":\"nodefault {kind} n{node} n{src}->n{dst}\",\"cat\":\"fault\",\
             \"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":0,\"tid\":{src},\"args\":{args}}}",
            at.raw(),
        ),
        TraceEvent::Recovery { at, action, .. } => format!(
            "{{\"name\":\"recovery {action}\",\"cat\":\"recovery\",\"ph\":\"i\",\"s\":\"g\",\
             \"ts\":{},\"pid\":0,\"tid\":0,\"args\":{args}}}",
            at.raw(),
        ),
        TraceEvent::Abort { at, label, .. } => format!(
            "{{\"name\":\"FAIL {label}\",\"cat\":\"abort\",\"ph\":\"i\",\"s\":\"g\",\
             \"ts\":{},\"pid\":0,\"tid\":0,\"args\":{args}}}",
            at.raw(),
        ),
    }
}

/// A Chrome `trace_events` document of *host* profiling spans: one track
/// per profiled thread (named via `thread_name` metadata, so worker tracks
/// read `worker-0`, `worker-1`, …), one complete (`"ph":"X"`) event per
/// [`specrt_prof::TimelineSpan`]. Timestamps are microseconds since the
/// process profiling epoch — real wall time, unlike [`chrome_trace`] whose
/// "microseconds" are simulated cycles; the two documents use different
/// pids so they stay distinguishable if ever concatenated.
pub fn chrome_host_trace(report: &specrt_prof::ProfReport) -> String {
    let mut out = String::from(
        "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
         \"tid\":0,\"args\":{\"name\":\"specrt host profile\"}}",
    );
    for (tid, t) in report.threads.iter().enumerate() {
        let _ = write!(
            out,
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(&t.label)
        );
        for s in &t.timeline {
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"cat\":\"host\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":1,\"tid\":{tid}}}",
                esc(s.name),
                s.start_ns as f64 / 1e3,
                (s.dur_ns as f64 / 1e3).max(0.001),
            );
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// A single JSON object with `counters`, `histograms` (count/mean/max and
/// the non-empty log-2 buckets) and `breakdowns` (busy/sync/mem cycles).
pub fn metrics_json(m: &MetricsRegistry) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (k, v)) in m.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", esc(k));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in m.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"max\":{},\"buckets\":{{",
            esc(k),
            h.count(),
            h.sum(),
            h.mean(),
            h.max()
        );
        let mut first = true;
        for b in 0..64 {
            if h.bucket(b) > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":{}", 1u64 << b, h.bucket(b));
            }
        }
        out.push_str("}}");
    }
    out.push_str("},\"breakdowns\":{");
    for (i, (k, b)) in m.breakdowns().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"busy\":{},\"sync\":{},\"mem\":{}}}",
            esc(k),
            b.busy.raw(),
            b.sync.raw(),
            b.mem.raw()
        );
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HitKind;
    use specrt_engine::Cycles;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Transaction {
                at: Cycles(10),
                proc: 1,
                arr: 0,
                idx: 7,
                write: true,
                hit: HitKind::Miss,
                home: 2,
                queue: Cycles(4),
                complete: Cycles(218),
                case: Some("d"),
            },
            TraceEvent::SpecTransition {
                at: Cycles(12),
                proc: 1,
                arr: 0,
                idx: 7,
                protocol: "nonpriv",
                from: "Clear".into(),
                to: "NoShr,First(cpu1)".into(),
                iter: Some(3),
            },
            TraceEvent::Abort {
                at: Cycles(300),
                proc: Some(2),
                arr: Some(0),
                idx: Some(7),
                iter: Some(4),
                label: "write_conflict",
                reason: "cpu2 wrote an element first accessed by cpu1".into(),
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let out = jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "line: {l}");
        }
        assert!(lines[0].contains("\"case\":\"d\""));
        assert!(lines[1].contains("\"protocol\":\"nonpriv\""));
        assert!(lines[2].contains("\"label\":\"write_conflict\""));
    }

    #[test]
    fn chrome_trace_shape() {
        let out = chrome_trace(&sample_events());
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with('}'));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"dur\":208"));
        assert!(out.contains("FAIL write_conflict"));
    }

    #[test]
    fn net_events_export() {
        let e = TraceEvent::Net {
            at: Cycles(5),
            src: 0,
            dst: 3,
            hops: 2,
            queue: Cycles(7),
            transit: Cycles(63),
        };
        let line = jsonl(std::slice::from_ref(&e));
        assert!(line.contains("\"kind\":\"net\""));
        assert!(line.contains("\"src\":0") && line.contains("\"dst\":3"));
        assert!(line.contains("\"hops\":2"));
        assert!(line.contains("\"queue\":7") && line.contains("\"transit\":63"));
        let chrome = chrome_trace(&[e]);
        assert!(chrome.contains("\"cat\":\"net\""));
        assert!(chrome.contains("\"dur\":63"));
    }

    #[test]
    fn fault_and_recovery_events_export() {
        let f = TraceEvent::Fault {
            at: Cycles(40),
            src: 1,
            dst: 6,
            kind: "drop",
            attempt: 2,
        };
        let r = TraceEvent::Recovery {
            at: Cycles(90),
            action: "retry-speculative",
            attempt: 1,
        };
        let lines = jsonl(&[f.clone(), r.clone()]);
        assert!(lines.contains("\"kind\":\"fault\""));
        assert!(lines.contains("\"fault\":\"drop\"") && lines.contains("\"attempt\":2"));
        assert!(lines.contains("\"kind\":\"recovery\""));
        assert!(lines.contains("\"action\":\"retry-speculative\""));
        let chrome = chrome_trace(&[f, r]);
        assert!(chrome.contains("\"cat\":\"fault\""));
        assert!(chrome.contains("recovery retry-speculative"));
    }

    #[test]
    fn node_fault_events_export() {
        let e = TraceEvent::NodeFault {
            at: Cycles(70),
            src: 0,
            dst: 2,
            node: 2,
            kind: "crash",
            attempt: 1,
        };
        let lines = jsonl(std::slice::from_ref(&e));
        assert!(lines.contains("\"kind\":\"nodefault\""), "{lines}");
        assert!(lines.contains("\"node\":2"), "{lines}");
        assert!(lines.contains("\"fault\":\"crash\""), "{lines}");
        let chrome = chrome_trace(&[e]);
        assert!(chrome.contains("nodefault crash n2 n0->n2"), "{chrome}");
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_host_trace_names_worker_tracks() {
        let report = specrt_prof::ProfReport {
            threads: vec![
                specrt_prof::ThreadProfile {
                    label: "main".into(),
                    spans: Vec::new(),
                    timeline: vec![specrt_prof::TimelineSpan {
                        name: "fuzz.case",
                        start_ns: 1_500,
                        dur_ns: 2_000,
                        depth: 0,
                    }],
                    dropped: 0,
                },
                specrt_prof::ThreadProfile {
                    label: "worker-0".into(),
                    spans: Vec::new(),
                    timeline: vec![specrt_prof::TimelineSpan {
                        name: "par.worker",
                        start_ns: 0,
                        dur_ns: 10_000,
                        depth: 0,
                    }],
                    dropped: 0,
                },
            ],
        };
        let out = chrome_host_trace(&report);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with('}'));
        assert!(out.contains("\"name\":\"thread_name\""));
        assert!(out.contains("{\"name\":\"worker-0\"}"));
        // ns become µs; host events live on pid 1, away from simulated pid 0.
        assert!(out.contains("\"ts\":1.500"));
        assert!(out.contains("\"dur\":2.000"));
        assert!(out.contains("\"pid\":1"));
        assert!(!out.contains("\"pid\":0,"));
    }

    #[test]
    fn metrics_json_shape() {
        let mut m = MetricsRegistry::new();
        m.incr("proto.msgs", 2);
        m.observe("lat", 100);
        m.record_breakdown(
            "proc0",
            specrt_engine::TimeBreakdown {
                busy: Cycles(5),
                sync: Cycles(1),
                mem: Cycles(2),
            },
        );
        let out = metrics_json(&m);
        assert!(out.contains("\"proto.msgs\":2"));
        assert!(out.contains("\"count\":1"));
        assert!(out.contains("\"64\":1")); // 100 lands in the [64,128) bucket
        assert!(out.contains("\"busy\":5"));
    }
}
