//! Sinks and the [`Tracer`] handle that the simulated layers hold.

use crate::event::TraceEvent;

/// Where emitted events go.
///
/// Implementations must be cheap per event — sinks run inside the
/// simulator's innermost loops whenever tracing is on.
pub trait TraceSink: std::fmt::Debug {
    /// Records one event.
    fn record(&mut self, ev: TraceEvent);

    /// Takes every recorded event out of the sink, oldest first. Sinks
    /// that forward events elsewhere (or drop them) return an empty vec.
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Number of events dropped because the sink was full.
    fn dropped(&self) -> u64 {
        0
    }
}

/// A sink that discards everything. Useful for measuring the overhead of
/// event *construction* alone (the [`Tracer`] fast path skips even that
/// when no sink is installed).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: TraceEvent) {}
}

/// A bounded recorder: keeps the most recent `capacity` events, counting
/// (rather than storing) any overflow, so a long run's trace memory stays
/// bounded while the tail — where aborts live — is always retained.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// Creates a recorder bounded at `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            buf: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the recorder holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The handle a simulated layer owns. `Tracer::off()` is the default:
/// no sink, and every emission site guards construction with
/// [`Tracer::enabled`], so the hot path costs one branch on a field that
/// never changes mid-run.
#[derive(Debug, Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
}

impl Tracer {
    /// A disabled tracer (the default).
    pub const fn off() -> Self {
        Tracer { sink: None }
    }

    /// A tracer recording into the given sink.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// A tracer recording into a [`RingBufferSink`] of `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Tracer::new(Box::new(RingBufferSink::new(capacity)))
    }

    /// Whether any sink is installed. Emission sites check this before
    /// constructing an event so disabled tracing costs a single branch.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records `ev` if a sink is installed.
    #[inline]
    pub fn emit(&mut self, ev: TraceEvent) {
        if let Some(s) = &mut self.sink {
            s.record(ev);
        }
    }

    /// Records the event built by `f` if a sink is installed; `f` is not
    /// called otherwise.
    #[inline]
    pub fn emit_with<F: FnOnce() -> TraceEvent>(&mut self, f: F) {
        if let Some(s) = &mut self.sink {
            s.record(f());
        }
    }

    /// Takes every recorded event, leaving tracing enabled.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        match &mut self.sink {
            Some(s) => s.drain(),
            None => Vec::new(),
        }
    }

    /// Number of events the sink dropped (ring overflow).
    pub fn dropped(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.dropped())
    }

    /// Removes the sink, disabling tracing.
    pub fn disable(&mut self) {
        self.sink = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrt_engine::Cycles;

    fn msg(at: u64) -> TraceEvent {
        TraceEvent::Message {
            at: Cycles(at),
            kind: "First_update",
            arr: 0,
            idx: at,
        }
    }

    #[test]
    fn off_tracer_ignores_and_never_builds() {
        let mut t = Tracer::off();
        assert!(!t.enabled());
        t.emit_with(|| unreachable!("must not construct when off"));
        assert!(t.drain().is_empty());
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut t = Tracer::ring(3);
        assert!(t.enabled());
        for i in 0..5 {
            t.emit(msg(i));
        }
        assert_eq!(t.dropped(), 2);
        let evs = t.drain();
        assert_eq!(
            evs.iter().map(|e| e.at().raw()).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        // Drain leaves tracing on.
        t.emit(msg(9));
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn null_sink_discards() {
        let mut t = Tracer::new(Box::new(NullSink));
        t.emit(msg(1));
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn disable_turns_off() {
        let mut t = Tracer::ring(4);
        t.disable();
        assert!(!t.enabled());
    }
}
