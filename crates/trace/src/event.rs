//! The structured event schema.
//!
//! Events use raw `u32`/`u64` identifiers for processors, arrays and nodes
//! so that this crate sits below the memory/protocol layers in the
//! dependency graph (it depends only on `specrt-engine`); the emitting
//! layer converts its typed ids at the (already traced, therefore cold)
//! emission site.

use std::fmt;

use specrt_engine::Cycles;

/// Where an access hit in the issuing processor's cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitKind {
    /// Primary-cache hit.
    L1,
    /// Secondary-cache hit.
    L2,
    /// Miss; the line was fetched from its home node.
    Miss,
}

impl HitKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            HitKind::L1 => "l1",
            HitKind::L2 => "l2",
            HitKind::Miss => "miss",
        }
    }
}

/// One structured observation of the simulated machine.
///
/// All times are simulated [`Cycles`]; `proc` doubles as the node id (the
/// machine is one processor per node, §5).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A protocol transaction: a load/store entered `MemSystem::read`/
    /// `write` and completed at `complete`.
    Transaction {
        /// Issue time.
        at: Cycles,
        /// Issuing processor.
        proc: u32,
        /// Array accessed.
        arr: u32,
        /// Element index.
        idx: u64,
        /// Store (true) or load.
        write: bool,
        /// Cache level the access hit at.
        hit: HitKind,
        /// Home node of the element.
        home: u32,
        /// Cycles the transaction waited for its home directory bank.
        queue: Cycles,
        /// Completion time.
        complete: Cycles,
        /// Which of the paper's protocol algorithms (a)–(h) the access
        /// took, when one beyond a plain hit/refill applied.
        case: Option<&'static str>,
    },
    /// A per-element speculative state transition observed at the
    /// directory: `NoShr`/`ROnly`/`First` movement for the
    /// non-privatization protocol, `MaxR1st`/`MinW` stamp movement for the
    /// privatization protocol.
    SpecTransition {
        /// Observation time.
        at: Cycles,
        /// Processor whose access caused the transition.
        proc: u32,
        /// Array under test.
        arr: u32,
        /// Element index.
        idx: u64,
        /// Protocol family label (`nonpriv`, `priv`, `priv-noreadin`).
        protocol: &'static str,
        /// State before the access, e.g. `Clear` or `MaxR1st=2,MinW=inf`.
        from: String,
        /// State after the access.
        to: String,
        /// Effective iteration stamp of the access, when stamped.
        iter: Option<u64>,
    },
    /// An asynchronous access-bit message was delivered at its home.
    Message {
        /// Delivery time.
        at: Cycles,
        /// Message kind (`First_update`, `ROnly_update`, …).
        kind: &'static str,
        /// Array the message concerns.
        arr: u32,
        /// Element index.
        idx: u64,
    },
    /// The interconnect routed a message (opt-in: emitted only when the
    /// memory system's network tracing is enabled, since protocol-heavy
    /// runs route thousands of messages).
    Net {
        /// Send time.
        at: Cycles,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Links crossed.
        hops: u32,
        /// Cycles spent queued on links (beyond the unloaded transit).
        queue: Cycles,
        /// Total transit time (delivery − send).
        transit: Cycles,
    },
    /// The scheduler dispatched work to a processor.
    Sched {
        /// Dispatch time.
        at: Cycles,
        /// Processor receiving the work.
        proc: u32,
        /// First global iteration of the dispatched chunk.
        iter: u64,
        /// Scheduling-policy label (`static`, `dynamic`, …).
        policy: &'static str,
        /// Dispatch overhead charged.
        overhead: Cycles,
        /// Idle wait before the work became available.
        wait: Cycles,
    },
    /// The interconnect's fault plane perturbed a message in transit
    /// (dropped, duplicated, or delayed it).
    Fault {
        /// Send time of the affected message.
        at: Cycles,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// What happened (`drop`, `duplicate`, `delay`).
        kind: &'static str,
        /// Which transmission the decision applied to (0 = original send,
        /// n = n-th retransmission).
        attempt: u32,
    },
    /// A node-level fault (crash, pause, or partition) swallowed a
    /// message: the interconnect force-dropped it because a whole node —
    /// not a single message — is out of the conversation.
    NodeFault {
        /// Send time of the swallowed message.
        at: Cycles,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// The node the sender will suspect if retries stay swallowed.
        node: u32,
        /// Fault shape (`crash`, `pause`, `partition`).
        kind: &'static str,
        /// Which transmission was swallowed (0 = original send).
        attempt: u32,
    },
    /// The machine exercised a recovery path after a speculation failure:
    /// a speculative retry, or the paper's serial re-execution safety net.
    Recovery {
        /// When recovery began.
        at: Cycles,
        /// Recovery action (`retry-speculative`, `checkpoint-restart`,
        /// `serial-reexec`).
        action: &'static str,
        /// Attempt number (1-based across retries; serial fallback carries
        /// the attempt count that preceded it).
        attempt: u32,
    },
    /// Abort forensics: the speculation FAILed.
    Abort {
        /// Detection time.
        at: Cycles,
        /// Processor whose access or message exposed the failure.
        proc: Option<u32>,
        /// Array involved, when the failing site knew it.
        arr: Option<u32>,
        /// Element index involved.
        idx: Option<u64>,
        /// Effective iteration stamp at the failing site.
        iter: Option<u64>,
        /// Machine-readable `FailReason` label.
        label: &'static str,
        /// Human-readable single-line rendering of the `FailReason`.
        reason: String,
    },
}

impl TraceEvent {
    /// Time the event was observed.
    pub fn at(&self) -> Cycles {
        match self {
            TraceEvent::Transaction { at, .. }
            | TraceEvent::SpecTransition { at, .. }
            | TraceEvent::Message { at, .. }
            | TraceEvent::Net { at, .. }
            | TraceEvent::Sched { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::NodeFault { at, .. }
            | TraceEvent::Recovery { at, .. }
            | TraceEvent::Abort { at, .. } => *at,
        }
    }

    /// Stable kind label used by the exporters (`txn`, `spec`, `msg`,
    /// `net`, `sched`, `fault`, `nodefault`, `recovery`, `abort`).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Transaction { .. } => "txn",
            TraceEvent::SpecTransition { .. } => "spec",
            TraceEvent::Message { .. } => "msg",
            TraceEvent::Net { .. } => "net",
            TraceEvent::Sched { .. } => "sched",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::NodeFault { .. } => "nodefault",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::Abort { .. } => "abort",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Transaction {
                at,
                proc,
                arr,
                idx,
                write,
                hit,
                home,
                queue,
                complete,
                case,
            } => write!(
                f,
                "t={:<8} cpu{proc} {} arr{arr}[{idx}] {} home=n{home} queue={} (done {}){}",
                at.raw(),
                if *write { "store" } else { "load " },
                hit.label(),
                queue.raw(),
                complete.raw(),
                case.map(|c| format!(" case=({c})")).unwrap_or_default(),
            ),
            TraceEvent::SpecTransition {
                at,
                proc,
                arr,
                idx,
                protocol,
                from,
                to,
                iter,
            } => write!(
                f,
                "t={:<8} cpu{proc} {protocol} arr{arr}[{idx}] {from} -> {to}{}",
                at.raw(),
                iter.map(|i| format!(" @iter {i}")).unwrap_or_default(),
            ),
            TraceEvent::Message { at, kind, arr, idx } => {
                write!(f, "t={:<8} dir   {kind} for arr{arr}[{idx}]", at.raw())
            }
            TraceEvent::Net {
                at,
                src,
                dst,
                hops,
                queue,
                transit,
            } => write!(
                f,
                "t={:<8} net   n{src}->n{dst} hops={hops} queue={} transit={}",
                at.raw(),
                queue.raw(),
                transit.raw(),
            ),
            TraceEvent::Sched {
                at,
                proc,
                iter,
                policy,
                overhead,
                wait,
            } => write!(
                f,
                "t={:<8} cpu{proc} sched[{policy}] iter {iter} (overhead {} wait {})",
                at.raw(),
                overhead.raw(),
                wait.raw(),
            ),
            TraceEvent::Fault {
                at,
                src,
                dst,
                kind,
                attempt,
            } => write!(
                f,
                "t={:<8} FAULT n{src}->n{dst} {kind} (attempt {attempt})",
                at.raw(),
            ),
            TraceEvent::NodeFault {
                at,
                src,
                dst,
                node,
                kind,
                attempt,
            } => write!(
                f,
                "t={:<8} NFLT  n{src}->n{dst} {kind} n{node} (attempt {attempt})",
                at.raw(),
            ),
            TraceEvent::Recovery {
                at,
                action,
                attempt,
            } => write!(f, "t={:<8} RECOV {action} (attempt {attempt})", at.raw(),),
            TraceEvent::Abort {
                at,
                proc,
                arr,
                idx,
                iter,
                reason,
                ..
            } => write!(
                f,
                "t={:<8} FAIL  {reason}{}{}{}",
                at.raw(),
                proc.map(|p| format!(" cpu{p}")).unwrap_or_default(),
                match (arr, idx) {
                    (Some(a), Some(i)) => format!(" arr{a}[{i}]"),
                    _ => String::new(),
                },
                iter.map(|i| format!(" iter {i}")).unwrap_or_default(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_times_are_stable() {
        let e = TraceEvent::Message {
            at: Cycles(42),
            kind: "First_update",
            arr: 1,
            idx: 3,
        };
        assert_eq!(e.kind(), "msg");
        assert_eq!(e.at(), Cycles(42));
        assert!(e.to_string().contains("First_update"));
    }

    #[test]
    fn hit_labels_distinct() {
        let mut labels = [HitKind::L1, HitKind::L2, HitKind::Miss].map(|h| h.label());
        labels.sort_unstable();
        let n = labels.len();
        labels.to_vec().dedup();
        assert_eq!(labels.len(), n);
    }
}
