//! # specrt-trace
//!
//! Structured observability for the simulated machine: a zero-dependency
//! tracing layer ([`TraceSink`], [`Tracer`]), a structured event schema
//! ([`TraceEvent`]), a unified [`MetricsRegistry`] absorbing every layer's
//! counters/histograms/time breakdowns, and exporters (JSONL and Chrome
//! `trace_events` JSON, loadable in Perfetto or `chrome://tracing`).
//!
//! The paper's whole evaluation (Figs. 11–14) rests on observing the
//! simulated machine — Busy/Sync/Mem decompositions, failure timing,
//! per-protocol transaction costs. This crate records those observations as
//! first-class events rather than ad-hoc prints:
//!
//! - **protocol transactions** entering `MemSystem::read`/`write` (hit
//!   level, home node, directory-bank queueing delay, which of the paper's
//!   algorithms (a)–(h) the access took),
//! - **speculative state transitions** per element (`NoShr`/`ROnly`/`First`
//!   for the non-privatization protocol of Fig. 6–7, `MaxR1st`/`MinW` stamp
//!   movement for the privatization protocol of Fig. 8–9),
//! - **scheduler events** (chunk dispatch per processor),
//! - **abort forensics**: the full `FailReason` with processor, element,
//!   iteration and cycle context.
//!
//! Tracing is runtime-toggleable and free when off: the [`Tracer`] handle
//! holds an `Option<Box<dyn TraceSink>>`; every emission site is guarded by
//! an inlined [`Tracer::enabled`] check so no event is even constructed on
//! the disabled path.
//!
//! # Examples
//!
//! ```
//! use specrt_engine::Cycles;
//! use specrt_trace::{HitKind, TraceEvent, Tracer};
//!
//! let mut tracer = Tracer::ring(1024);
//! if tracer.enabled() {
//!     tracer.emit(TraceEvent::Transaction {
//!         at: Cycles(100),
//!         proc: 0,
//!         arr: 0,
//!         idx: 7,
//!         write: false,
//!         hit: HitKind::Miss,
//!         home: 3,
//!         queue: Cycles(12),
//!         complete: Cycles(309),
//!         case: Some("c"),
//!     });
//! }
//! let events = tracer.drain();
//! assert_eq!(events.len(), 1);
//! let json = specrt_trace::export::chrome_trace(&events);
//! assert!(json.contains("traceEvents"));
//! ```

mod event;
pub mod export;
mod metrics;
mod sink;

pub use event::{HitKind, TraceEvent};
pub use metrics::MetricsRegistry;
pub use sink::{NullSink, RingBufferSink, TraceSink, Tracer};
