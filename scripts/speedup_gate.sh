#!/usr/bin/env sh
# Parallel-speedup gate over the BENCH_prof.json emitted by the
# protocol_micro bench (check/fuzz_profile datapoint).
#
#   usage: speedup_gate.sh [BENCH_prof.json]
#
# Fails if the j=default fuzz throughput fell below 0.9x of the j=1 run —
# parallelism must never make the harness slower. Emits a GitHub warning
# annotation while the speedup sits below 1.5x, the open ROADMAP target;
# the gate stops warning once the worker pool actually pays off.
#
# Exit codes distinguish a perf regression from broken plumbing:
#   0  pass
#   1  speedup below the floor (a real regression)
#   2  bench file missing or unparseable (the bench did not run)
#
# Plain POSIX sh + grep/awk so it runs anywhere CI does; the JSON is
# machine-written with one "key": value per line, which is all the parsing
# below assumes.

set -eu

FILE="${1:-crates/bench/BENCH_prof.json}"
FAIL_BELOW="0.9"
WARN_BELOW="1.5"

if [ ! -f "$FILE" ]; then
    echo "speedup gate: $FILE not found (run: cargo bench -p specrt-bench --bench protocol_micro)" >&2
    exit 2
fi

field() {
    grep "\"$1\"" "$FILE" | head -n 1 | awk -F: '{gsub(/[ ,]/, "", $2); print $2}'
}

SPEEDUP="$(field speedup)"
JOBS="$(field jobs)"
SERIAL="$(field serial_cases_per_sec)"
PARALLEL="$(field parallel_cases_per_sec)"

if [ -z "$SPEEDUP" ] || [ -z "$JOBS" ]; then
    echo "speedup gate: could not parse speedup/jobs from $FILE" >&2
    exit 2
fi

echo "speedup gate: ${SERIAL} cases/s at j=1 vs ${PARALLEL} cases/s at j=${JOBS} -> ${SPEEDUP}x"

if [ "$JOBS" -le 1 ]; then
    echo "speedup gate: single-core host (jobs=${JOBS}); floor check only"
fi

awk -v s="$SPEEDUP" -v floor="$FAIL_BELOW" 'BEGIN { exit !(s < floor) }' && {
    echo "::error::speedup gate FAIL: measured speedup ${SPEEDUP}x at j=${JOBS} is below the ${FAIL_BELOW}x floor — parallelism is a slowdown"
    exit 1
}

if [ "$JOBS" -gt 1 ]; then
    awk -v s="$SPEEDUP" -v warn="$WARN_BELOW" 'BEGIN { exit !(s < warn) }' && \
        echo "::warning::fuzz speedup at j=${JOBS} is only ${SPEEDUP}x (< ${WARN_BELOW}x target); see ROADMAP open item 1 and BENCH_prof.json worker utilization"
fi

echo "speedup gate: pass"
