#!/usr/bin/env sh
# Parallel-speedup gate over the BENCH_prof.json emitted by the
# protocol_micro bench (check/fuzz_profile datapoint).
#
#   usage: speedup_gate.sh [BENCH_prof.json]
#
# On a multi-core host (jobs > 1) the worker pool must actually pay off:
# the gate FAILS below 1.5x (the former warn-only ROADMAP target, now the
# floor) and emits a GitHub warning annotation while the speedup sits
# below 0.5x the job count — the scaling target for the parallel runner.
# On a single-core host (jobs <= 1) no speedup is physically available, so
# only the 0.9x floor applies: parallel dispatch must never make the
# harness materially slower than the in-thread run.
#
# Exit codes distinguish a perf regression from broken plumbing:
#   0  pass
#   1  speedup below the floor (a real regression)
#   2  bench file missing or unparseable (the bench did not run)
#
# Plain POSIX sh + grep/awk so it runs anywhere CI does; the JSON is
# machine-written with one "key": value per line, which is all the parsing
# below assumes.

set -eu

FILE="${1:-crates/bench/BENCH_prof.json}"
SINGLE_CORE_FAIL_BELOW="0.9"
MULTI_CORE_FAIL_BELOW="1.5"
SCALING_FRACTION="0.5"

if [ ! -f "$FILE" ]; then
    echo "speedup gate: $FILE not found (run: cargo bench -p specrt-bench --bench protocol_micro)" >&2
    exit 2
fi

field() {
    grep "\"$1\"" "$FILE" | head -n 1 | awk -F: '{gsub(/[ ,]/, "", $2); print $2}'
}

SPEEDUP="$(field speedup)"
JOBS="$(field jobs)"
SERIAL="$(field serial_cases_per_sec)"
PARALLEL="$(field parallel_cases_per_sec)"

if [ -z "$SPEEDUP" ] || [ -z "$JOBS" ]; then
    echo "speedup gate: could not parse speedup/jobs from $FILE" >&2
    exit 2
fi

echo "speedup gate: ${SERIAL} cases/s at j=1 vs ${PARALLEL} cases/s at j=${JOBS} -> ${SPEEDUP}x"

if [ "$JOBS" -le 1 ]; then
    echo "speedup gate: single-core host (jobs=${JOBS}); floor check only"
    awk -v s="$SPEEDUP" -v floor="$SINGLE_CORE_FAIL_BELOW" 'BEGIN { exit !(s < floor) }' && {
        echo "::error::speedup gate FAIL: measured speedup ${SPEEDUP}x at j=${JOBS} is below the ${SINGLE_CORE_FAIL_BELOW}x floor — parallel dispatch is a slowdown"
        exit 1
    }
    echo "speedup gate: pass"
    exit 0
fi

awk -v s="$SPEEDUP" -v floor="$MULTI_CORE_FAIL_BELOW" 'BEGIN { exit !(s < floor) }' && {
    echo "::error::speedup gate FAIL: measured speedup ${SPEEDUP}x at j=${JOBS} is below the ${MULTI_CORE_FAIL_BELOW}x floor — the worker pool is not paying off"
    exit 1
}

TARGET="$(awk -v j="$JOBS" -v f="$SCALING_FRACTION" 'BEGIN { printf "%.1f", j * f }')"
awk -v s="$SPEEDUP" -v t="$TARGET" 'BEGIN { exit !(s < t) }' && \
    echo "::warning::fuzz speedup at j=${JOBS} is ${SPEEDUP}x, below the ${SCALING_FRACTION}xN scaling target (${TARGET}x); see BENCH_prof.json worker utilization"

echo "speedup gate: pass"
